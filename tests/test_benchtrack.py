"""Tests for the bench trajectory ledger (``tools/benchtrack``)."""

from __future__ import annotations

import copy
import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.benchtrack import (  # noqa: E402
    check_parallel,
    check_regressions,
    check_serving,
    ingest,
    load_bench_document,
    load_ledger,
    new_ledger,
    render_report,
    save_ledger,
    stamp_bench_document,
    validate_bench_document,
)
from tools.benchtrack.schema import write_bench_document  # noqa: E402


def bench_doc(**overrides):
    doc = {
        "schema": "repro.bench/v1",
        "bench": "backend_scoring",
        "workload": {"alphabet": 12, "sequences": 40},
        "results": [
            {"backend": "reference", "workers": 0, "seconds": 0.10,
             "speedup": 1.0},
            {"backend": "vectorized", "workers": 0, "seconds": 0.02,
             "speedup": 5.0},
        ],
    }
    doc.update(overrides)
    return doc


class TestSchema:
    def test_valid_document_passes(self):
        assert validate_bench_document(bench_doc()) == []

    def test_problems_are_itemized(self):
        problems = validate_bench_document(
            {"schema": "other", "bench": "", "workload": {}, "results": []}
        )
        assert len(problems) == 4

    def test_non_dict_rejected(self):
        assert validate_bench_document([1, 2]) != []

    def test_nonpositive_seconds_rejected(self):
        doc = bench_doc()
        doc["results"][0]["seconds"] = 0.0
        assert any("seconds" in p for p in validate_bench_document(doc))

    def test_stamp_adds_provenance(self):
        doc = stamp_bench_document(bench_doc())
        assert isinstance(doc["generated_unix"], float)
        assert isinstance(doc.get("git_sha"), str)  # we run inside the repo
        assert len(doc["git_sha"]) == 40

    def test_stamp_preserves_existing(self):
        doc = stamp_bench_document(
            bench_doc(git_sha="cafe", generated_unix=123.0)
        )
        assert doc["git_sha"] == "cafe"
        assert doc["generated_unix"] == 123.0

    def test_write_validates_and_stamps(self, tmp_path):
        target = write_bench_document(tmp_path / "b.json", bench_doc())
        loaded = load_bench_document(target)
        assert loaded["git_sha"]
        with pytest.raises(ValueError, match="invalid"):
            write_bench_document(tmp_path / "bad.json", {"schema": "nope"})


class TestLedger:
    def test_ingest_appends_and_roundtrips(self, tmp_path):
        ledger = new_ledger()
        ingest(ledger, bench_doc(), source="b.json")
        ingest(ledger, bench_doc(), source="b2.json")
        path = tmp_path / "ledger.json"
        save_ledger(path, ledger)
        reloaded = load_ledger(path)
        assert len(reloaded["entries"]) == 2
        assert reloaded["entries"][0]["source"] == "b.json"

    def test_load_missing_path_gives_fresh_ledger(self, tmp_path):
        ledger = load_ledger(tmp_path / "absent.json")
        assert ledger["entries"] == []

    def test_load_rejects_foreign_schema(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "other/v1", "entries": []}')
        with pytest.raises(ValueError, match="not a"):
            load_ledger(bad)

    def test_ingest_rejects_invalid_document(self):
        with pytest.raises(ValueError, match="invalid"):
            ingest(new_ledger(), {"schema": "nope"})

    def test_report_lists_entries(self):
        ledger = new_ledger()
        ingest(ledger, bench_doc())
        report = render_report(ledger)
        assert "## backend_scoring" in report
        assert "backend=vectorized workers=0" in report
        assert "5.00x" in report


class TestCheck:
    def test_no_baseline_passes(self):
        assert check_regressions(new_ledger(), bench_doc()) == []

    def test_same_numbers_pass(self):
        ledger = new_ledger()
        ingest(ledger, bench_doc())
        assert check_regressions(ledger, bench_doc()) == []

    def test_regressed_speedup_fails(self):
        ledger = new_ledger()
        ingest(ledger, bench_doc())
        regressed = bench_doc()
        for row in regressed["results"]:
            row["speedup"] = row["speedup"] / 2.5  # beyond 50% tolerance
        messages = check_regressions(ledger, regressed)
        assert messages
        assert any("vectorized" in m and "regressed" in m for m in messages)

    def test_within_tolerance_passes(self):
        ledger = new_ledger()
        ingest(ledger, bench_doc())
        wobble = bench_doc()
        wobble["results"][1]["speedup"] = 4.0  # -20%, tolerance is 50%
        assert check_regressions(ledger, wobble) == []

    def test_different_workload_never_compared(self):
        ledger = new_ledger()
        ingest(ledger, bench_doc())
        other = bench_doc(workload={"alphabet": 12, "sequences": 999})
        for row in other["results"]:
            row["speedup"] = 0.01
        assert check_regressions(ledger, other) == []

    def test_new_config_is_not_a_regression(self):
        ledger = new_ledger()
        ingest(ledger, bench_doc())
        extended = bench_doc()
        extended["results"].append(
            {"backend": "vectorized", "workers": 8, "seconds": 1.0,
             "speedup": 0.1}
        )
        assert check_regressions(ledger, extended) == []

    def test_latest_entry_is_the_baseline(self):
        ledger = new_ledger()
        fast = bench_doc()
        ingest(ledger, copy.deepcopy(fast))
        slower = bench_doc()
        slower["results"][1]["speedup"] = 2.0
        ingest(ledger, slower)
        # 1.9 vs latest baseline 2.0 is fine; vs the first entry's 5.0
        # it would fail — latest must win.
        current = bench_doc()
        current["results"][1]["speedup"] = 1.9
        assert check_regressions(ledger, current) == []

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            check_regressions(new_ledger(), bench_doc(), tolerance=1.5)


def parallel_doc(serial=0.10, parallel=0.05, cpu_count=4):
    return bench_doc(
        environment={"cpu_count": cpu_count, "python": "3.11", "machine": "x"},
        results=[
            {"backend": "reference", "workers": 0, "seconds": 1.0,
             "speedup": 1.0},
            {"backend": "vectorized", "workers": 0, "seconds": serial,
             "speedup": 1.0 / serial},
            {"backend": "vectorized", "workers": 2, "seconds": parallel,
             "speedup": 1.0 / parallel},
        ],
    )


class TestCheckParallel:
    def test_faster_parallel_passes(self):
        assert check_parallel(parallel_doc()) == []

    def test_slower_parallel_fails(self):
        messages = check_parallel(parallel_doc(serial=0.05, parallel=0.10))
        assert len(messages) == 1
        assert "workers=2" in messages[0]
        assert "serial" in messages[0]

    def test_within_tolerance_passes(self):
        # 8% slower sits inside the default 10% noise allowance.
        assert check_parallel(parallel_doc(serial=0.100, parallel=0.108)) == []
        assert check_parallel(
            parallel_doc(serial=0.100, parallel=0.108), tolerance=0.05
        ) != []

    def test_single_core_machine_skips(self):
        # Parallel speedup is physically impossible on one core: the
        # check passes trivially rather than failing for the hardware.
        doc = parallel_doc(serial=0.05, parallel=0.10, cpu_count=1)
        assert check_parallel(doc) == []

    def test_document_cpu_count_preferred(self):
        # The document records the machine that *ran* the bench; an
        # explicit cpu_count argument (the CLI path) still wins.
        doc = parallel_doc(serial=0.05, parallel=0.10, cpu_count=1)
        assert check_parallel(doc, cpu_count=4) != []

    def test_reference_rows_are_not_twins(self):
        # The reference row differs in more than `workers`, so the
        # vectorized workers=2 row never pairs against it.
        doc = parallel_doc()
        doc["results"] = [row for row in doc["results"]
                          if not (row["backend"] == "vectorized"
                                  and row["workers"] == 0)]
        assert check_parallel(doc) == []

    def test_invalid_document_reported(self):
        messages = check_parallel({"schema": "other"})
        assert messages
        assert all("invalid bench document" in m for m in messages)

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ValueError):
            check_parallel(parallel_doc(), tolerance=-0.1)


def serving_doc(rps=500.0, p99=8.0, **overrides):
    doc = bench_doc(
        bench="serving",
        workload={"sequences": 64, "requests": 200},
        results=[
            {
                "mode": "classify",
                "workers": 0,
                "seconds": 2.0,
                "requests": 200,
                "rejected": 0,
                "errors": 0,
                "req_per_second": rps,
                "p50_ms": p99 / 3,
                "p99_ms": p99,
                "batch_occupancy": 3.5,
            }
        ],
    )
    doc.update(overrides)
    return doc


class TestCheckServing:
    def test_no_baseline_passes(self):
        assert check_serving(new_ledger(), serving_doc()) == []

    def test_same_numbers_pass(self):
        ledger = new_ledger()
        ingest(ledger, serving_doc())
        assert check_serving(ledger, serving_doc()) == []

    def test_throughput_collapse_fails(self):
        ledger = new_ledger()
        ingest(ledger, serving_doc(rps=500.0))
        messages = check_serving(ledger, serving_doc(rps=100.0))
        assert len(messages) == 1
        assert "req_per_second" in messages[0]

    def test_latency_collapse_fails(self):
        ledger = new_ledger()
        ingest(ledger, serving_doc(p99=8.0))
        messages = check_serving(ledger, serving_doc(p99=40.0))
        assert len(messages) == 1
        assert "p99_ms" in messages[0]

    def test_both_directions_reported(self):
        ledger = new_ledger()
        ingest(ledger, serving_doc(rps=500.0, p99=8.0))
        messages = check_serving(ledger, serving_doc(rps=100.0, p99=40.0))
        assert len(messages) == 2

    def test_within_tolerance_passes(self):
        ledger = new_ledger()
        ingest(ledger, serving_doc(rps=500.0, p99=8.0))
        # -40% throughput and +90% p99 both sit inside the defaults
        # (50% drop allowed, 100% rise allowed).
        assert check_serving(ledger, serving_doc(rps=300.0, p99=15.0)) == []

    def test_metric_fields_do_not_fork_config_keys(self):
        # Measurement fields (req_per_second, p99_ms, counts...) must
        # not participate in row matching, or every run would be a "new
        # configuration" and the gate would never fire.
        ledger = new_ledger()
        ingest(ledger, serving_doc(rps=500.0))
        messages = check_serving(ledger, serving_doc(rps=10.0, p99=99.0))
        assert messages  # rows matched despite every measurement moving

    def test_different_workload_never_compared(self):
        ledger = new_ledger()
        ingest(ledger, serving_doc())
        other = serving_doc(rps=1.0, workload={"sequences": 9, "requests": 9})
        assert check_serving(ledger, other) == []

    def test_invalid_document_reported(self):
        messages = check_serving(new_ledger(), {"schema": "other"})
        assert messages
        assert all("invalid bench document" in m for m in messages)

    def test_bad_tolerances_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            check_serving(new_ledger(), serving_doc(), tolerance=1.5)
        with pytest.raises(ValueError, match="latency"):
            check_serving(
                new_ledger(), serving_doc(), latency_tolerance=-0.5
            )


class TestCli:
    def run(self, *argv, cwd=REPO_ROOT):
        return subprocess.run(
            [sys.executable, "-m", "tools.benchtrack", *argv],
            capture_output=True,
            text=True,
            cwd=cwd,
        )

    def test_ingest_report_check_cycle(self, tmp_path):
        bench_path = tmp_path / "bench.json"
        bench_path.write_text(json.dumps(bench_doc()))
        ledger_path = tmp_path / "ledger.json"
        report_path = tmp_path / "report.md"
        ingested = self.run(
            "ingest", str(bench_path),
            "--ledger", str(ledger_path), "--report", str(report_path),
        )
        assert ingested.returncode == 0, ingested.stderr
        assert "1 entries" in ingested.stdout
        assert "## backend_scoring" in report_path.read_text()

        ok = self.run("check", str(bench_path), "--ledger", str(ledger_path))
        assert ok.returncode == 0, ok.stderr

        regressed = bench_doc()
        for row in regressed["results"]:
            row["speedup"] = row["speedup"] / 3
        regressed_path = tmp_path / "regressed.json"
        regressed_path.write_text(json.dumps(regressed))
        failed = self.run(
            "check", str(regressed_path), "--ledger", str(ledger_path)
        )
        assert failed.returncode == 1
        assert "REGRESSION" in failed.stderr

    def test_check_sugar_uses_repo_ledger(self):
        # BENCH_PR5.json is the seeded first ledger entry, so checking it
        # against the shipped BENCH_TRAJECTORY.json must pass.
        result = self.run("--check", str(REPO_ROOT / "BENCH_PR5.json"))
        assert result.returncode == 0, result.stderr
        assert "passed" in result.stdout

    def test_shipped_ledger_contains_seed_entry(self):
        ledger = load_ledger(REPO_ROOT / "BENCH_TRAJECTORY.json")
        assert any(
            entry["source"] == "BENCH_PR5.json" for entry in ledger["entries"]
        )

    def test_check_parallel_cli_pass_fail_and_skip(self, tmp_path):
        ok_path = tmp_path / "ok.json"
        ok_path.write_text(json.dumps(parallel_doc()))
        ok = self.run("check-parallel", str(ok_path))
        assert ok.returncode == 0, ok.stderr
        assert "passed" in ok.stdout

        bad_path = tmp_path / "bad.json"
        bad_path.write_text(json.dumps(parallel_doc(serial=0.05,
                                                    parallel=0.10)))
        failed = self.run("check-parallel", str(bad_path))
        assert failed.returncode == 1
        assert "PARALLEL REGRESSION" in failed.stderr

        # Same regressed document, but the bench machine had one core:
        # the CLI prints the skip and exits 0.
        single = parallel_doc(serial=0.05, parallel=0.10, cpu_count=1)
        single_path = tmp_path / "single.json"
        single_path.write_text(json.dumps(single))
        skipped = self.run("check-parallel", str(single_path))
        assert skipped.returncode == 0, skipped.stderr
        assert "skipped" in skipped.stdout

    def test_check_serving_cli_pass_and_fail(self, tmp_path):
        ledger_path = tmp_path / "ledger.json"
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps(serving_doc()))
        ingested = self.run(
            "ingest", str(baseline_path),
            "--ledger", str(ledger_path), "--report", "",
        )
        assert ingested.returncode == 0, ingested.stderr

        ok = self.run(
            "check-serving", str(baseline_path), "--ledger", str(ledger_path)
        )
        assert ok.returncode == 0, ok.stderr
        assert "passed" in ok.stdout

        regressed_path = tmp_path / "regressed.json"
        regressed_path.write_text(json.dumps(serving_doc(rps=50.0, p99=99.0)))
        failed = self.run(
            "check-serving", str(regressed_path), "--ledger", str(ledger_path)
        )
        assert failed.returncode == 1
        assert "SERVING REGRESSION" in failed.stderr

    def test_no_subcommand_prints_help(self):
        result = self.run()
        assert result.returncode == 2
        assert "ingest" in result.stdout
