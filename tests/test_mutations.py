"""Tests for sequence corruption utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequences.database import SequenceDatabase
from repro.sequences.mutations import (
    block_shuffle,
    corrupt_database,
    indels,
    point_mutations,
)


class TestPointMutations:
    def test_rate_zero_identity(self, rng):
        seq = [0, 1, 2, 3] * 5
        assert point_mutations(seq, 0.0, 4, rng) == seq

    def test_rate_one_changes_everything(self, rng):
        seq = [0] * 50
        mutated = point_mutations(seq, 1.0, 4, rng)
        assert all(s != 0 for s in mutated)
        assert len(mutated) == 50

    def test_expected_rate(self, rng):
        seq = [0] * 2000
        mutated = point_mutations(seq, 0.25, 4, rng)
        changed = sum(1 for a, b in zip(seq, mutated) if a != b)
        assert 0.18 <= changed / 2000 <= 0.32

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            point_mutations([0], 1.5, 4, rng)
        with pytest.raises(ValueError):
            point_mutations([0], 0.5, 1, rng)

    def test_input_unmodified(self, rng):
        seq = [0, 1, 2]
        point_mutations(seq, 1.0, 4, rng)
        assert seq == [0, 1, 2]


class TestIndels:
    def test_rate_zero_identity(self, rng):
        seq = [0, 1, 2, 3]
        assert indels(seq, 0.0, 4, rng) == seq

    def test_length_roughly_preserved(self, rng):
        seq = [0, 1] * 500
        mutated = indels(seq, 0.3, 4, rng)
        assert 800 <= len(mutated) <= 1200

    def test_never_empty(self, rng):
        for _ in range(20):
            assert len(indels([0], 1.0, 2, rng)) >= 1

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            indels([0], -0.1, 4, rng)


class TestBlockShuffle:
    def test_single_block_identity(self, rng):
        seq = [0, 1, 2, 3]
        assert block_shuffle(seq, 1, rng) == seq

    def test_preserves_multiset(self, rng):
        seq = list(rng.integers(0, 4, size=40))
        shuffled = block_shuffle(seq, 4, rng)
        assert sorted(shuffled) == sorted(seq)
        assert len(shuffled) == len(seq)

    def test_paper_two_block_case(self):
        """aaaabbb with 2 blocks can become bbbaaaa."""
        rng = np.random.default_rng(1)
        outcomes = set()
        for _ in range(50):
            outcomes.add(tuple(block_shuffle([0] * 4 + [1] * 3, 2, rng)))
        # Some permutation moved a b-block before the a-block.
        assert any(out[0] == 1 for out in outcomes)

    def test_short_sequence_untouched(self, rng):
        assert block_shuffle([0], 5, rng) == [0]

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            block_shuffle([0, 1], 0, rng)


class TestCorruptDatabase:
    def test_labels_preserved(self):
        db = SequenceDatabase.from_strings(
            ["abab", "cdcd"], labels=["x", "y"]
        )
        corrupted = corrupt_database(
            db,
            lambda seq, rng: point_mutations(seq, 0.5, db.alphabet.size, rng),
            seed=1,
        )
        assert corrupted.labels == ["x", "y"]
        assert len(corrupted) == 2
        assert corrupted.alphabet == db.alphabet

    def test_deterministic_with_seed(self):
        db = SequenceDatabase.from_strings(["abababab"] * 3)
        mutate = lambda seq, rng: point_mutations(seq, 0.5, 2, rng)
        a = corrupt_database(db, mutate, seed=7)
        b = corrupt_database(db, mutate, seed=7)
        assert [r.symbols for r in a] == [r.symbols for r in b]


class TestClusteringRobustness:
    def test_block_shuffle_keeps_clusters_separable(self, toy_db):
        """The paper's core claim: block rearrangement preserves the
        local statistics CLUSEQ uses, so clustering quality survives a
        shuffle that would destroy any global alignment."""
        from repro.core.cluseq import cluster_sequences
        from repro.evaluation.metrics import evaluate_clustering

        shuffled = corrupt_database(
            toy_db, lambda seq, rng: block_shuffle(seq, 4, rng), seed=3
        )
        result = cluster_sequences(
            shuffled,
            k=2,
            significance_threshold=2,
            min_unique_members=3,
            max_iterations=12,
            seed=1,
        )
        report = evaluate_clustering(shuffled.labels, result.labels())
        assert report.purity >= 0.7


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(0, 3), min_size=1, max_size=60),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_point_mutation_properties(seq, rate):
    rng = np.random.default_rng(0)
    mutated = point_mutations(seq, rate, 4, rng)
    assert len(mutated) == len(seq)
    assert all(0 <= s < 4 for s in mutated)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(0, 3), min_size=1, max_size=60),
    st.integers(min_value=1, max_value=8),
)
def test_block_shuffle_properties(seq, blocks):
    rng = np.random.default_rng(0)
    shuffled = block_shuffle(seq, blocks, rng)
    assert sorted(shuffled) == sorted(seq)
