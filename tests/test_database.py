"""Tests for repro.sequences.database."""

import numpy as np
import pytest

from repro.sequences.alphabet import Alphabet, AlphabetError
from repro.sequences.database import OUTLIER_LABEL, SequenceDatabase


class TestConstruction:
    def test_from_strings_infers_alphabet(self):
        db = SequenceDatabase.from_strings(["ab", "ba"])
        assert db.alphabet.symbols == ("a", "b")
        assert len(db) == 2

    def test_from_strings_with_labels(self):
        db = SequenceDatabase.from_strings(["ab", "ba"], labels=["x", None])
        assert db.labels == ["x", None]

    def test_label_count_mismatch(self):
        with pytest.raises(ValueError, match="labels"):
            SequenceDatabase.from_strings(["ab"], labels=["x", "y"])

    def test_explicit_alphabet_enforced(self):
        ab = Alphabet("ab")
        with pytest.raises(AlphabetError):
            SequenceDatabase.from_strings(["abc"], alphabet=ab)

    def test_empty_sequence_rejected(self):
        db = SequenceDatabase(Alphabet("ab"))
        with pytest.raises(ValueError, match="empty"):
            db.add_sequence("")

    def test_add_sequence_assigns_ids(self):
        db = SequenceDatabase(Alphabet("ab"))
        r0 = db.add_sequence("ab")
        r1 = db.add_sequence("ba", label="x")
        assert (r0.sid, r1.sid) == (0, 1)
        assert db[1].label == "x"


class TestViews:
    def test_encoded_matches_alphabet(self, tiny_db):
        assert tiny_db.encoded(0) == tiny_db.alphabet.encode(tiny_db[0].symbols)

    def test_iter_encoded(self, tiny_db):
        pairs = list(tiny_db.iter_encoded())
        assert [i for i, _ in pairs] == [0, 1, 2, 3]

    def test_record_protocol(self, tiny_db):
        record = tiny_db[0]
        assert len(record) == 6
        assert record.as_string() == "ababab"
        assert list(record) == list("ababab")

    def test_distinct_labels(self, tiny_db):
        assert tiny_db.distinct_labels() == ["x", "y"]

    def test_distinct_labels_excludes_outliers(self):
        db = SequenceDatabase.from_strings(
            ["ab", "ba"], labels=["x", OUTLIER_LABEL]
        )
        assert db.distinct_labels() == ["x"]
        assert db.distinct_labels(include_outliers=True) == ["x", OUTLIER_LABEL]

    def test_repr(self, tiny_db):
        assert "4 sequences" in repr(tiny_db)


class TestStatistics:
    def test_total_and_average_length(self, tiny_db):
        assert tiny_db.total_length == 24
        assert tiny_db.average_length == 6.0

    def test_empty_average(self):
        db = SequenceDatabase(Alphabet("ab"))
        assert db.average_length == 0.0
        assert db.length_range() == (0, 0)

    def test_length_range(self):
        db = SequenceDatabase.from_strings(["a", "aaa", "aa"])
        assert db.length_range() == (1, 3)

    def test_symbol_counts(self, tiny_db):
        counts = tiny_db.symbol_counts()
        assert counts.sum() == 24
        assert counts[0] == 12  # 'a'
        assert counts[1] == 12  # 'b'

    def test_background_probabilities_sum_to_one(self, tiny_db):
        bg = tiny_db.background_probabilities()
        assert np.isclose(bg.sum(), 1.0)
        assert np.allclose(bg, [0.5, 0.5])

    def test_background_with_smoothing_positive(self):
        ab = Alphabet("abc")
        db = SequenceDatabase(ab)
        db.add_sequence("aaa")
        bg = db.background_probabilities(smoothing=1.0)
        assert (bg > 0).all()
        assert np.isclose(bg.sum(), 1.0)

    def test_background_negative_smoothing_rejected(self, tiny_db):
        with pytest.raises(ValueError):
            tiny_db.background_probabilities(smoothing=-1)

    def test_background_empty_db_rejected(self):
        db = SequenceDatabase(Alphabet("ab"))
        with pytest.raises(ValueError):
            db.background_probabilities()


class TestSubsets:
    def test_subset_preserves_ids(self, tiny_db):
        sub = tiny_db.subset([2, 3])
        assert len(sub) == 2
        assert sub[0].sid == 2

    def test_without_outliers(self):
        db = SequenceDatabase.from_strings(
            ["ab", "ba", "aa"], labels=["x", OUTLIER_LABEL, "y"]
        )
        clean = db.without_outliers()
        assert len(clean) == 2
        assert OUTLIER_LABEL not in clean.labels
