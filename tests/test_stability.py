"""Tests for the multi-seed stability analysis."""

import math

import pytest

from repro.evaluation.stability import MetricSummary, stability_analysis


class TestMetricSummary:
    def test_statistics(self):
        summary = MetricSummary(name="x", values=(1.0, 2.0, 3.0))
        assert summary.mean == pytest.approx(2.0)
        assert summary.std == pytest.approx(math.sqrt(2 / 3))
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert "x:" in str(summary)

    def test_single_value(self):
        summary = MetricSummary(name="x", values=(5.0,))
        assert summary.mean == 5.0
        assert summary.std == 0.0


class TestStabilityAnalysis:
    def test_report_structure(self, toy_db):
        report = stability_analysis(
            toy_db,
            seeds=(0, 1),
            k=2,
            significance_threshold=2,
            min_unique_members=3,
            max_iterations=8,
        )
        assert report.seeds == (0, 1)
        for name in (
            "accuracy",
            "macro_precision",
            "macro_recall",
            "num_clusters",
            "iterations",
            "outlier_fraction",
        ):
            summary = report[name]
            assert len(summary.values) == 2
            assert 0.0 <= summary.minimum <= summary.maximum
        assert "stability over seeds" in report.summary()

    def test_quality_on_easy_data(self, toy_db):
        report = stability_analysis(
            toy_db,
            seeds=(0, 1, 2),
            k=2,
            significance_threshold=2,
            min_unique_members=3,
            max_iterations=12,
        )
        assert report["accuracy"].mean >= 0.6
        assert report["num_clusters"].minimum >= 1

    def test_validation(self, toy_db):
        with pytest.raises(ValueError, match="seed"):
            stability_analysis(toy_db, seeds=(0,), seed=1)
        with pytest.raises(ValueError, match="at least one"):
            stability_analysis(toy_db, seeds=())
