"""Property-based tests for the similarity dynamic program."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pst import ProbabilisticSuffixTree
from repro.core.similarity import (
    log_symbol_ratios,
    similarity,
    similarity_bruteforce,
)

training = st.lists(
    st.lists(st.integers(0, 2), min_size=2, max_size=30), min_size=1, max_size=4
)
query = st.lists(st.integers(0, 2), min_size=1, max_size=25)

BG = np.array([0.5, 0.3, 0.2])


def build(seqs):
    pst = ProbabilisticSuffixTree(
        alphabet_size=3, max_depth=3, significance_threshold=2, p_min=1e-3
    )
    for seq in seqs:
        pst.add_sequence(seq)
    return pst


@settings(max_examples=60, deadline=None)
@given(training, query)
def test_dp_equals_bruteforce(seqs, q):
    """The O(l) DP must agree exactly with the O(l²) reference."""
    pst = build(seqs)
    result = similarity(pst, q, BG)
    brute, _ = similarity_bruteforce(pst, q, BG)
    assert math.isclose(result.log_similarity, brute, rel_tol=1e-9, abs_tol=1e-9)


@settings(max_examples=60, deadline=None)
@given(training, query)
def test_best_segment_achieves_reported_score(seqs, q):
    """Summing the per-position ratios over the reported segment must
    reproduce the reported log similarity."""
    pst = build(seqs)
    result = similarity(pst, q, BG)
    ratios = log_symbol_ratios(pst, q, BG)
    segment_sum = sum(ratios[result.best_start : result.best_end])
    assert math.isclose(
        segment_sum, result.log_similarity, rel_tol=1e-9, abs_tol=1e-9
    )


@settings(max_examples=60, deadline=None)
@given(training, query)
def test_sim_at_least_any_single_position(seqs, q):
    """SIM maximises over all segments, so it is at least every
    single-position ratio."""
    pst = build(seqs)
    result = similarity(pst, q, BG)
    ratios = log_symbol_ratios(pst, q, BG)
    assert result.log_similarity >= max(ratios) - 1e-9


@settings(max_examples=60, deadline=None)
@given(training, query)
def test_sim_at_least_whole_sequence(seqs, q):
    """The whole sequence is one candidate segment."""
    pst = build(seqs)
    result = similarity(pst, q, BG)
    assert result.log_similarity >= result.whole_sequence_log - 1e-9


@settings(max_examples=60, deadline=None)
@given(training, query)
def test_training_sequence_scores_high(seqs, q):
    """A sequence the model was trained on scores at least as high as
    its own best single symbol — sanity of the self-similarity."""
    pst = build(seqs)
    seq = seqs[0]
    result = similarity(pst, seq, BG)
    assert math.isfinite(result.log_similarity)


@settings(max_examples=40, deadline=None)
@given(training, query)
def test_appending_cannot_reduce_sim(seqs, q):
    """SIM over a prefix can never exceed SIM over the full sequence:
    every segment of the prefix is also a segment of the extension
    (same left context, since ratios use absolute positions)."""
    pst = build(seqs)
    full = similarity(pst, q, BG).log_similarity
    for cut in range(1, len(q)):
        prefix = similarity(pst, q[:cut], BG).log_similarity
        assert prefix <= full + 1e-9
