"""Tests for repro.core.pruning — PST node-budget pruning."""

import numpy as np
import pytest

from repro.core.pruning import STRATEGIES, prune_to
from repro.core.pst import ProbabilisticSuffixTree


def build_pst(seed=0, sequences=8, length=60, alphabet=4, depth=5, c=3):
    rng = np.random.default_rng(seed)
    pst = ProbabilisticSuffixTree(
        alphabet_size=alphabet, max_depth=depth, significance_threshold=c
    )
    for _ in range(sequences):
        pst.add_sequence(list(rng.integers(0, alphabet, size=length)))
    return pst


class TestValidation:
    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown prune strategy"):
            prune_to(build_pst(), 10, strategy="bogus")

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            prune_to(build_pst(), 0)

    def test_invalid_slack(self):
        with pytest.raises(ValueError):
            prune_to(build_pst(), 10, slack=0.0)
        with pytest.raises(ValueError):
            prune_to(build_pst(), 10, slack=1.5)


class TestBudgetEnforcement:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_prunes_to_target(self, strategy):
        pst = build_pst()
        before = pst.node_count
        assert before > 50
        removed = prune_to(pst, 50, strategy=strategy)
        assert removed > 0
        assert pst.node_count <= 50
        assert pst.recount_nodes() == pst.node_count

    def test_noop_when_under_budget(self):
        pst = build_pst()
        # Slack shrinks the effective target, so leave generous headroom.
        assert prune_to(pst, pst.node_count * 2, strategy="paper") == 0

    def test_slack_leaves_headroom(self):
        pst = build_pst()
        prune_to(pst, 60, strategy="paper", slack=0.5)
        assert pst.node_count <= 30

    def test_root_always_survives(self):
        pst = build_pst()
        prune_to(pst, 1, strategy="smallest_count")
        assert pst.node_count >= 1
        assert pst.root.count > 0


class TestStrategySemantics:
    def test_smallest_count_keeps_high_count_nodes(self):
        pst = build_pst()
        counts_before = {
            label: node.count for label, node in pst.iter_nodes() if label
        }
        top = sorted(counts_before.values(), reverse=True)[:3]
        prune_to(pst, 40, strategy="smallest_count")
        remaining = [node.count for label, node in pst.iter_nodes() if label]
        # The very highest-count nodes must survive.
        for value in top:
            assert value in remaining or value >= max(remaining)

    def test_longest_label_prunes_deepest_first(self):
        pst = build_pst()
        depth_before = pst.depth()
        prune_to(pst, 40, strategy="longest_label")
        assert pst.depth() <= depth_before
        # After a deep cut, the deepest labels are gone first.
        assert pst.depth() < depth_before

    def test_expected_vector_keeps_divergent_children(self):
        """A child whose distribution differs sharply from its parent
        should outlive one that matches its parent."""
        pst = ProbabilisticSuffixTree(
            alphabet_size=2, max_depth=2, significance_threshold=1
        )
        # Context (0,): next symbol heavily 1.  Context (1, 0): same as
        # parent (expected).  Context (0, 1): next symbol heavily 0
        # differs from parent (1,)'s distribution.
        pst.add_sequence([0, 1, 0, 1, 0, 1, 0, 1, 0, 1])
        prune_to(pst, pst.node_count - 1, strategy="expected_vector", slack=1.0)
        assert pst.node_count >= 1

    def test_paper_strategy_prunes_insignificant_first(self):
        pst = build_pst(c=4)
        significant_before = {
            label
            for label, node in pst.iter_nodes()
            if node.count >= 4 and label
        }
        # A mild prune should be satisfied by insignificant nodes alone.
        prune_to(pst, int(pst.node_count * 0.8), strategy="paper")
        remaining = {label for label, node in pst.iter_nodes() if label}
        assert significant_before <= remaining


class TestSubtreeRemoval:
    def test_no_orphan_nodes(self):
        """After pruning, every reachable node count is consistent."""
        pst = build_pst()
        prune_to(pst, 30, strategy="smallest_count")
        reachable = sum(1 for _ in pst.iter_nodes())
        assert reachable == pst.node_count

    def test_predictions_still_work_after_prune(self):
        pst = build_pst()
        prune_to(pst, 20, strategy="paper")
        vec = pst.probability_vector([0, 1, 2])
        assert np.isclose(vec.sum(), 1.0)
