"""Tests for the §2 distribution-difference measures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.divergence import (
    j_divergence,
    kl_divergence,
    pairwise_pst_divergence,
    pst_divergence,
    variational_distance,
)
from repro.core.pst import ProbabilisticSuffixTree
from repro.sequences.markov import MarkovSource


def fit(source, seed, sequences=20, length=150):
    rng = np.random.default_rng(seed)
    pst = ProbabilisticSuffixTree(
        alphabet_size=source.alphabet_size, max_depth=3,
        significance_threshold=10,
    )
    for seq in source.sample_many(sequences, length, rng, length_jitter=0.0):
        pst.add_sequence(seq)
    return pst


def alternating_source():
    return MarkovSource(
        2, 1,
        {(): np.array([0.5, 0.5]),
         (0,): np.array([0.1, 0.9]),
         (1,): np.array([0.9, 0.1])},
    )


def repeating_source():
    return MarkovSource(
        2, 1,
        {(): np.array([0.5, 0.5]),
         (0,): np.array([0.9, 0.1]),
         (1,): np.array([0.1, 0.9])},
    )


class TestVectorMeasures:
    def test_identical_is_zero(self):
        p = [0.2, 0.3, 0.5]
        assert variational_distance(p, p) == 0.0
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-9)
        assert j_divergence(p, p) == pytest.approx(0.0, abs=1e-9)

    def test_disjoint_variational_is_two(self):
        assert variational_distance([1.0, 0.0], [0.0, 1.0]) == pytest.approx(2.0)

    def test_kl_asymmetric_j_symmetric(self):
        p, q = [0.9, 0.1], [0.5, 0.5]
        assert kl_divergence(p, q) != pytest.approx(kl_divergence(q, p))
        assert j_divergence(p, q) == pytest.approx(j_divergence(q, p))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            variational_distance([0.5, 0.5], [1.0])
        with pytest.raises(ValueError):
            kl_divergence([0.5, 0.5], [1.0])

    def test_known_value(self):
        # V([1,0],[0.5,0.5]) = 0.5 + 0.5 = 1.0
        assert variational_distance([1.0, 0.0], [0.5, 0.5]) == pytest.approx(1.0)


class TestPstDivergence:
    def test_same_source_low_divergence(self):
        a = fit(alternating_source(), seed=1)
        b = fit(alternating_source(), seed=2)
        assert pst_divergence(a, b) < 0.15

    def test_different_sources_high_divergence(self):
        a = fit(alternating_source(), seed=1)
        b = fit(repeating_source(), seed=1)
        assert pst_divergence(a, b) > 0.5

    def test_self_divergence_zero(self):
        a = fit(alternating_source(), seed=1)
        assert pst_divergence(a, a) == pytest.approx(0.0, abs=1e-9)

    def test_measures_agree_on_ordering(self):
        near_a = fit(alternating_source(), seed=1)
        near_b = fit(alternating_source(), seed=2)
        far = fit(repeating_source(), seed=1)
        for measure in ("variational", "kl", "j"):
            close = pst_divergence(near_a, near_b, measure=measure)
            distant = pst_divergence(near_a, far, measure=measure)
            assert distant > close, measure

    def test_alphabet_mismatch(self):
        a = fit(alternating_source(), seed=1)
        b = ProbabilisticSuffixTree(alphabet_size=3)
        with pytest.raises(ValueError):
            pst_divergence(a, b)

    def test_unknown_measure(self):
        a = fit(alternating_source(), seed=1)
        with pytest.raises(ValueError):
            pst_divergence(a, a, measure="bogus")

    def test_empty_trees(self):
        a = ProbabilisticSuffixTree(alphabet_size=2)
        b = ProbabilisticSuffixTree(alphabet_size=2)
        assert pst_divergence(a, b) == pytest.approx(0.0)


class TestPairwiseMatrix:
    def test_matrix_structure(self):
        psts = [
            fit(alternating_source(), seed=1),
            fit(alternating_source(), seed=2),
            fit(repeating_source(), seed=1),
        ]
        matrix = pairwise_pst_divergence(psts)
        assert matrix.shape == (3, 3)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)
        # Same-source pair is closer than cross-source pairs.
        assert matrix[0, 1] < matrix[0, 2]
        assert matrix[0, 1] < matrix[1, 2]


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=2, max_size=8),
    st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=2, max_size=8),
)
def test_measure_properties(p_raw, q_raw):
    n = min(len(p_raw), len(q_raw))
    p = np.array(p_raw[:n]); p /= p.sum()
    q = np.array(q_raw[:n]); q /= q.sum()
    assert 0.0 <= variational_distance(p, q) <= 2.0 + 1e-9
    assert kl_divergence(p, q) >= -1e-9
    assert j_divergence(p, q) >= -1e-9
    assert j_divergence(p, q) == pytest.approx(j_divergence(q, p), abs=1e-9)
