"""Unit tests for the CLUSEQ engine (parameters, result object, mechanics)."""

import math

import pytest

from repro.core.cluseq import CLUSEQ, CluseqParams, cluster_sequences
from repro.sequences.database import SequenceDatabase


class TestParams:
    def test_defaults_valid(self):
        CluseqParams()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("k", 0),
            ("significance_threshold", 0),
            ("similarity_threshold", 0.0),
            ("similarity_threshold", -1.0),
            ("max_depth", 0),
            ("sample_multiplier", 0),
            ("max_iterations", 0),
            ("ordering", "bogus"),
            ("valley_method", "bogus"),
            ("calibration_method", "bogus"),
        ],
    )
    def test_invalid_params(self, field, value):
        with pytest.raises(ValueError):
            CluseqParams(**{field: value})

    def test_min_unique_defaults_to_c(self):
        assert CluseqParams(significance_threshold=7).resolved_min_unique() == 7
        assert (
            CluseqParams(significance_threshold=7, min_unique_members=2)
            .resolved_min_unique()
            == 2
        )

    def test_params_or_overrides_not_both(self):
        with pytest.raises(TypeError):
            CLUSEQ(CluseqParams(), k=3)

    def test_overrides_accepted(self):
        engine = CLUSEQ(k=3, significance_threshold=2)
        assert engine.params.k == 3


class TestFitBasics:
    def test_empty_database_rejected(self):
        db = SequenceDatabase.from_strings(["ab"])
        db._records.clear()
        db._encoded.clear()
        with pytest.raises(ValueError, match="empty"):
            CLUSEQ(CluseqParams()).fit(db)

    def test_single_sequence(self):
        db = SequenceDatabase.from_strings(["abababab"])
        result = CLUSEQ(
            CluseqParams(significance_threshold=2, min_unique_members=1,
                         max_iterations=5)
        ).fit(db)
        assert result.num_clusters <= 1
        assert len(result.assignments) == 1

    def test_result_structure(self, toy_db):
        result = cluster_sequences(
            toy_db,
            k=2,
            significance_threshold=2,
            min_unique_members=3,
            max_iterations=10,
            seed=1,
        )
        assert result.iterations >= 1
        assert result.iterations == len(result.history)
        assert result.elapsed_seconds > 0
        assert set(result.assignments) == set(range(len(toy_db)))
        # Every assignment refers to a live cluster.
        live = {cl.cluster_id for cl in result.clusters}
        for ids in result.assignments.values():
            assert ids <= live

    def test_labels_consistent_with_assignments(self, toy_db):
        result = cluster_sequences(
            toy_db, k=2, significance_threshold=2, min_unique_members=3, seed=1
        )
        labels = result.labels()
        for index, label in enumerate(labels):
            if label is None:
                assert result.assignments[index] == set()
            else:
                assert label in result.assignments[index]

    def test_outliers_match_labels(self, toy_db):
        result = cluster_sequences(
            toy_db, k=2, significance_threshold=2, min_unique_members=3, seed=1
        )
        labels = result.labels()
        assert result.outliers() == [
            i for i, lab in enumerate(labels) if lab is None
        ]

    def test_cluster_by_id(self, toy_db):
        result = cluster_sequences(
            toy_db, k=2, significance_threshold=2, min_unique_members=3, seed=1
        )
        for cluster in result.clusters:
            assert result.cluster_by_id(cluster.cluster_id) is cluster
        with pytest.raises(KeyError):
            result.cluster_by_id(999999)

    def test_summary_readable(self, toy_db):
        result = cluster_sequences(
            toy_db, k=2, significance_threshold=2, min_unique_members=3, seed=1
        )
        text = result.summary()
        assert "CLUSEQ" in text and "clusters" in text

    def test_final_threshold_linear(self, toy_db):
        result = cluster_sequences(
            toy_db, k=2, significance_threshold=2, min_unique_members=3, seed=1
        )
        assert result.final_threshold == pytest.approx(
            math.exp(result.final_log_threshold)
        )


class TestHistory:
    def test_iteration_stats_fields(self, toy_db):
        result = cluster_sequences(
            toy_db, k=2, significance_threshold=2, min_unique_members=3, seed=1
        )
        for i, stats in enumerate(result.history):
            assert stats.iteration == i
            assert stats.clusters_after >= 0
            assert stats.unclustered >= 0
            assert stats.elapsed_seconds >= 0
            assert math.isfinite(stats.log_threshold)

    def test_max_iterations_respected(self, toy_db):
        result = cluster_sequences(
            toy_db,
            k=2,
            significance_threshold=2,
            min_unique_members=3,
            max_iterations=3,
            seed=1,
        )
        assert result.iterations <= 3


class TestPredict:
    def test_predict_member_sequence(self, toy_db):
        result = cluster_sequences(
            toy_db, k=2, significance_threshold=2, min_unique_members=3, seed=1
        )
        labels = result.labels()
        # Pick a clustered sequence and re-predict it.
        index = next(i for i, lab in enumerate(labels) if lab is not None)
        predicted = result.predict(toy_db.encoded(index))
        assert predicted in {cl.cluster_id for cl in result.clusters}

    def test_score_sequence_covers_all_clusters(self, toy_db):
        result = cluster_sequences(
            toy_db, k=2, significance_threshold=2, min_unique_members=3, seed=1
        )
        scores = result.score_sequence(toy_db.encoded(0))
        assert set(scores) == {cl.cluster_id for cl in result.clusters}

    def test_predict_no_clusters(self, toy_db):
        result = cluster_sequences(
            toy_db, k=2, significance_threshold=2, min_unique_members=3, seed=1
        )
        result.clusters = []
        assert result.predict(toy_db.encoded(0)) is None


class TestDeterminism:
    def test_same_seed_same_result(self, toy_db):
        kwargs = dict(
            k=2, significance_threshold=2, min_unique_members=3, seed=42
        )
        a = cluster_sequences(toy_db, **kwargs)
        b = cluster_sequences(toy_db, **kwargs)
        assert a.num_clusters == b.num_clusters
        assert a.labels() == b.labels()
        assert a.final_log_threshold == b.final_log_threshold


class TestOrderingPolicies:
    @pytest.mark.parametrize("ordering", ["fixed", "random", "cluster"])
    def test_all_orderings_run(self, toy_db, ordering):
        result = cluster_sequences(
            toy_db,
            k=2,
            significance_threshold=2,
            min_unique_members=3,
            ordering=ordering,
            max_iterations=6,
            seed=1,
        )
        assert result.iterations >= 1


class TestAdjustmentToggles:
    def test_no_adjustment_keeps_initial_t(self, toy_db):
        result = cluster_sequences(
            toy_db,
            k=2,
            significance_threshold=2,
            min_unique_members=3,
            adjust_threshold=False,
            similarity_threshold=5.0,
            max_iterations=6,
            seed=1,
        )
        assert result.final_log_threshold == pytest.approx(math.log(5.0))

    def test_calibration_off_keeps_user_start(self, toy_db):
        result = cluster_sequences(
            toy_db,
            k=2,
            significance_threshold=2,
            min_unique_members=3,
            calibrate_threshold=False,
            similarity_threshold=4.0,
            max_iterations=1,
            seed=1,
        )
        # After one iteration the threshold may have blended once, but it
        # must have *started* from log(4): verify via history.
        assert result.history[0].log_threshold != 0.0

    def test_rebuild_toggle_runs(self, toy_db):
        for rebuild in (True, False):
            result = cluster_sequences(
                toy_db,
                k=2,
                significance_threshold=2,
                min_unique_members=3,
                rebuild_each_iteration=rebuild,
                max_iterations=5,
                seed=1,
            )
            assert result.num_clusters >= 1

    def test_node_budget_respected_in_engine(self, toy_db):
        result = cluster_sequences(
            toy_db,
            k=2,
            significance_threshold=2,
            min_unique_members=3,
            max_nodes=50,
            max_iterations=5,
            seed=1,
        )
        for cluster in result.clusters:
            assert cluster.pst.node_count <= 50
