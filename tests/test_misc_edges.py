"""Assorted edge cases across modules."""

import io

import numpy as np
import pytest

from repro.baselines.hmm import DiscreteHMM
from repro.cli import main
from repro.sequences.io import iter_fasta, read_labelled_text


class TestIOEdges:
    def test_fasta_windows_line_endings(self):
        text = ">a fam\r\nACGT\r\nACGT\r\n"
        records = list(iter_fasta(io.StringIO(text)))
        assert records == [("a fam", "ACGTACGT")]

    def test_labelled_text_whitespace_label(self):
        db = read_labelled_text(io.StringIO(" \tabab\n"))
        assert db.labels == [None]  # blank label normalised to None

    def test_fasta_header_only_whitespace(self):
        records = list(iter_fasta(io.StringIO(">   \nAC\n")))
        assert records == [("", "AC")]


class TestHMMEdges:
    def test_fit_skips_empty_sequences(self):
        model = DiscreteHMM(2, 2, seed=0)
        model.fit([[0, 1, 0], []], iterations=2)
        assert np.isclose(model.emission.sum(axis=1), 1.0).all()

    def test_single_state(self):
        model = DiscreteHMM(1, 3, seed=0)
        model.fit([[0, 1, 2, 0, 1]], iterations=3)
        # One state: likelihood is the product of emission probabilities.
        assert model.log_likelihood([0]) == pytest.approx(
            np.log(model.emission[0, 0])
        )

    def test_single_symbol_alphabet(self):
        model = DiscreteHMM(2, 1, seed=0)
        assert model.log_likelihood([0, 0, 0]) == pytest.approx(0.0, abs=1e-9)


class TestCLIExperimentCommand:
    def test_experiment_dispatch(self, capsys, monkeypatch):
        """The experiment command resolves and runs the named harness."""
        import repro.experiments.table4_languages as table4

        calls = {}

        def fake_run(**kwargs):
            calls["ran"] = True
            return []

        def fake_print(rows):
            calls["printed"] = rows

        monkeypatch.setattr(table4, "run_table4", fake_run)
        monkeypatch.setattr(table4, "print_table4", fake_print)
        code = main(["experiment", "table4"])
        assert code == 0
        assert calls == {"ran": True, "printed": []}

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip()


class TestWorkAccounting:
    def test_reclustering_work_positive(self, toy_db):
        from repro.core.cluseq import cluster_sequences

        result = cluster_sequences(
            toy_db, k=2, significance_threshold=2, min_unique_members=3,
            max_iterations=5, seed=1,
        )
        assert result.total_reclustering_work > 0
        assert result.total_reclustering_work == sum(
            stats.reclustering_work for stats in result.history
        )

    def test_work_scales_with_database(self):
        from repro.core.cluseq import cluster_sequences
        from repro.sequences.generators import generate_two_cluster_toy

        small = generate_two_cluster_toy(size_per_cluster=10, length=30, seed=7)
        large = generate_two_cluster_toy(size_per_cluster=40, length=30, seed=7)
        kwargs = dict(
            k=2, significance_threshold=2, min_unique_members=3,
            max_iterations=4, seed=1,
        )
        work_small = cluster_sequences(small, **kwargs).total_reclustering_work
        work_large = cluster_sequences(large, **kwargs).total_reclustering_work
        assert work_large > work_small
