"""Unit tests for the sharding building blocks.

Routing (FNV-1a goldens, PST-router snapshots), the context-tree
dissimilarity, deterministic merge planning, PST count-merging, the
coordinator's config/manifest/journal formats and the per-shard plan
journaling that backs crash recovery. The whole-system properties
(chaos sweep, differential equivalence) live in
``test_shard_recovery.py`` / ``test_shard_differential.py``.
"""

import json
import os

import pytest

from repro.core.pst import ProbabilisticSuffixTree
from repro.shard import (
    ClusterExport,
    HashRouter,
    PstRouter,
    ShardConfig,
    build_router,
    context_tree_distance,
    dispatch_path,
    flat_labels,
    flat_log_likelihood,
    fnv1a,
    manifest_path,
    plan_merges,
    read_manifest,
)
from repro.shard.engine import ShardEngine, build_shard_engine
from repro.stream import (
    BatchRecord,
    CheckpointError,
    PlanRecord,
    StreamConfig,
    StreamJournal,
    ensure_resumable,
    read_journal,
)

ALPHABET = 4


def build_pst(sequences, alphabet_size=ALPHABET, max_depth=3, c=1):
    return ProbabilisticSuffixTree.from_sequences(
        sequences,
        alphabet_size=alphabet_size,
        max_depth=max_depth,
        significance_threshold=c,
    )


def regime_sequences(symbols, count=12, length=16):
    # Deterministic pseudo-random sequences over a symbol subset.
    return [
        [symbols[(i * 7 + j * 3 + i * j) % len(symbols)] for j in range(length)]
        for i in range(count)
    ]


REGIME_A = regime_sequences([0, 1])
REGIME_B = regime_sequences([2, 3])


class TestFnv1a:
    def test_golden_values(self):
        # Locked-down digests: the dispatch WAL records routes derived
        # from these, so the hash must never drift across versions.
        assert fnv1a([]) == 14695981039346656037
        assert fnv1a([0]) == 12638153115695167455
        assert fnv1a([1, 2, 3]) == 15035938162879559083
        assert fnv1a([255]) == 12638352127299873646
        assert fnv1a([256]) == 590682968308805178

    def test_multi_octet_symbols_do_not_collide_trivially(self):
        assert fnv1a([256]) != fnv1a([0]) != fnv1a([1, 0])


class TestHashRouter:
    def test_single_shard_short_circuits(self):
        assert HashRouter(1).route([5, 6, 7]) == 0

    def test_routes_are_stable_and_in_range(self):
        router = HashRouter(4)
        for seq in REGIME_A + REGIME_B:
            route = router.route(seq)
            assert 0 <= route < 4
            assert router.route(seq) == route

    def test_spreads_across_shards(self):
        router = HashRouter(2)
        routes = {
            router.route([i, i + 1, i * 3 % 7]) for i in range(32)
        }
        assert routes == {0, 1}

    def test_build_router_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown router"):
            build_router("round-robin", 2)
        with pytest.raises(ValueError, match="shards"):
            build_router("hash", 0)


class TestPstRouter:
    def make_exports(self):
        flat_a = build_pst(REGIME_A).flattened()
        flat_b = build_pst(REGIME_B).flattened()
        return [
            [ClusterExport(shard=0, cluster_id=0, weight=10, flat=flat_a)],
            [ClusterExport(shard=1, cluster_id=0, weight=10, flat=flat_b)],
        ]

    def test_falls_back_to_hash_before_first_snapshot(self):
        pst = PstRouter(2)
        hashed = HashRouter(2)
        for seq in REGIME_A:
            assert pst.route(seq) == hashed.route(seq)

    def test_routes_to_best_fitting_shard(self):
        router = PstRouter(2)
        router.refresh(self.make_exports(), round_=1)
        assert all(router.route(seq) == 0 for seq in REGIME_A)
        assert all(router.route(seq) == 1 for seq in REGIME_B)

    def test_exact_tie_prefers_lower_shard(self):
        flat = build_pst(REGIME_A).flattened()
        router = PstRouter(2)
        router.refresh(
            [
                [ClusterExport(shard=0, cluster_id=0, weight=1, flat=flat)],
                [ClusterExport(shard=1, cluster_id=0, weight=1, flat=flat)],
            ],
            round_=1,
        )
        assert all(router.route(seq) == 0 for seq in REGIME_A + REGIME_B)

    def test_state_dict_round_trip_preserves_routing(self):
        router = PstRouter(2)
        router.refresh(self.make_exports(), round_=3)
        state = router.state_dict()
        restored = PstRouter(2)
        restored.load_state(json.loads(json.dumps(state)))
        for seq in REGIME_A + REGIME_B:
            assert restored.route(seq) == router.route(seq)

    def test_load_state_rejects_shard_count_mismatch(self):
        router = PstRouter(2)
        router.refresh(self.make_exports(), round_=1)
        state = router.state_dict()
        with pytest.raises(ValueError, match="shards"):
            PstRouter(3).load_state(state)


class TestContextTreeDistance:
    def test_identity_is_zero(self):
        flat = build_pst(REGIME_A).flattened()
        assert context_tree_distance(flat, flat) == 0.0

    def test_symmetric_and_bounded(self):
        flat_a = build_pst(REGIME_A).flattened()
        flat_b = build_pst(REGIME_B).flattened()
        d_ab = context_tree_distance(flat_a, flat_b)
        d_ba = context_tree_distance(flat_b, flat_a)
        assert d_ab == pytest.approx(d_ba)
        assert 0.0 <= d_ab <= 2.0

    def test_separates_regimes(self):
        # Two models of the same regime (disjoint halves) must sit far
        # closer than models of different regimes.
        half_a1 = build_pst(REGIME_A[:6]).flattened()
        half_a2 = build_pst(REGIME_A[6:]).flattened()
        flat_b = build_pst(REGIME_B).flattened()
        within = context_tree_distance(half_a1, half_a2)
        across = context_tree_distance(half_a1, flat_b)
        assert within < across

    def test_rejects_alphabet_mismatch(self):
        flat_a = build_pst(REGIME_A).flattened()
        flat_other = build_pst(
            regime_sequences([0, 1]), alphabet_size=2
        ).flattened()
        with pytest.raises(ValueError, match="alphabet"):
            context_tree_distance(flat_a, flat_other)

    def test_flat_labels_enumerate_every_node(self):
        flat = build_pst(REGIME_A).flattened()
        labels = flat_labels(flat)
        assert len(labels) == flat.node_count
        assert labels[0] == ()  # root
        assert len(set(labels)) == flat.node_count


class TestFlatLogLikelihood:
    def test_own_regime_scores_higher(self):
        flat_a = build_pst(REGIME_A).flattened()
        flat_b = build_pst(REGIME_B).flattened()
        for seq in REGIME_A:
            assert flat_log_likelihood(flat_a, seq) > flat_log_likelihood(
                flat_b, seq
            )

    def test_empty_sequence_scores_zero(self):
        flat = build_pst(REGIME_A).flattened()
        assert flat_log_likelihood(flat, []) == 0.0


class TestPlanMerges:
    def exports_for(self, spec):
        """spec: list of (shard, cluster_id, weight, flat) tuples."""
        by_shard = {}
        for shard, cid, weight, flat in spec:
            by_shard.setdefault(shard, []).append(
                ClusterExport(shard=shard, cluster_id=cid, weight=weight,
                              flat=flat)
            )
        shards = max(by_shard) + 1
        return [by_shard.get(i, []) for i in range(shards)]

    def test_identical_models_merge_into_the_heavier(self):
        flat = build_pst(REGIME_A).flattened()
        ops, pairs = plan_merges(
            self.exports_for([(0, 0, 50, flat), (1, 3, 90, flat)]),
            threshold=0.25,
        )
        assert pairs == 1
        assert len(ops) == 1
        op = ops[0]
        assert (op.keep_shard, op.keep_cluster) == (1, 3)
        assert (op.drop_shard, op.drop_cluster) == (0, 0)
        assert op.distance == 0.0

    def test_weight_tie_keeps_lower_shard(self):
        flat = build_pst(REGIME_A).flattened()
        ops, _ = plan_merges(
            self.exports_for([(0, 2, 50, flat), (1, 1, 50, flat)]),
            threshold=0.25,
        )
        assert len(ops) == 1
        assert (ops[0].keep_shard, ops[0].keep_cluster) == (0, 2)

    def test_distant_models_stay_apart_but_are_scored(self):
        flat_a = build_pst(REGIME_A).flattened()
        flat_b = build_pst(REGIME_B).flattened()
        ops, pairs = plan_merges(
            self.exports_for([(0, 0, 10, flat_a), (1, 0, 10, flat_b)]),
            threshold=0.05,
        )
        assert ops == []
        assert pairs == 1

    def test_same_shard_pairs_are_never_scored(self):
        flat = build_pst(REGIME_A).flattened()
        ops, pairs = plan_merges(
            self.exports_for([(0, 0, 10, flat), (0, 1, 10, flat)]),
            threshold=2.0,
        )
        assert ops == []
        assert pairs == 0

    def test_near_empty_models_are_excluded(self):
        empty_flat = build_pst([]).flattened()
        assert empty_flat.node_count == 1
        real = build_pst(REGIME_A).flattened()
        ops, pairs = plan_merges(
            self.exports_for([(0, 0, 0, empty_flat), (1, 0, 10, real)]),
            threshold=2.0,
        )
        assert ops == []
        assert pairs == 0

    def test_each_cluster_dropped_at_most_once(self):
        flat = build_pst(REGIME_A).flattened()
        # B0 keeps A0 (heavier); the (A0, B1) pair must then be skipped
        # because A0 was already consumed as a merge source.
        ops, pairs = plan_merges(
            self.exports_for(
                [(0, 0, 10, flat), (1, 0, 50, flat), (1, 1, 40, flat)]
            ),
            threshold=0.25,
        )
        assert pairs == 2
        assert len(ops) == 1
        assert (ops[0].keep_shard, ops[0].keep_cluster) == (1, 0)

    def test_plan_is_deterministic_under_export_order(self):
        flat_1 = build_pst(REGIME_A[:6]).flattened()
        flat_2 = build_pst(REGIME_A[6:]).flattened()
        spec = [(0, 0, 30, flat_1), (1, 0, 20, flat_2)]
        first, _ = plan_merges(self.exports_for(spec), threshold=2.0)
        second, _ = plan_merges(self.exports_for(spec), threshold=2.0)
        assert first == second


class TestMergeCounts:
    def test_merge_equals_union_built_tree(self):
        merged = build_pst(REGIME_A[:6])
        other = build_pst(REGIME_A[6:])
        union = build_pst(REGIME_A)
        merged.merge_counts(other)
        assert merged.to_dict() == union.to_dict()

    def test_merge_reports_created_nodes_and_invalidates(self):
        merged = build_pst(REGIME_A)
        stale_flat = merged.flattened()
        created = merged.merge_counts(build_pst(REGIME_B))
        assert created > 0
        fresh_flat = merged.flattened()
        assert fresh_flat.node_count == stale_flat.node_count + created
        assert fresh_flat.version > stale_flat.version

    def test_merge_respects_own_depth_cap(self):
        shallow = build_pst(REGIME_A, max_depth=2)
        deep = build_pst(REGIME_B, max_depth=3)
        shallow.merge_counts(deep)
        assert max(
            len(label) for label in flat_labels(shallow.flattened())
        ) <= 2

    def test_merge_rejects_alphabet_mismatch(self):
        with pytest.raises(ValueError, match="alphabet"):
            build_pst(REGIME_A).merge_counts(
                build_pst(regime_sequences([0, 1]), alphabet_size=2)
            )


class TestShardConfig:
    def test_round_trips_through_dict(self):
        config = ShardConfig(
            shards=3,
            router="pst",
            runner="process",
            consolidate_every=7,
            merge_threshold=0.5,
            stream=StreamConfig(batch_size=5, seed=9),
        )
        assert ShardConfig.from_dict(
            json.loads(json.dumps(config.to_dict()))
        ) == config

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shards": 0},
            {"router": "nope"},
            {"runner": "thread"},
            {"consolidate_every": -1},
            {"merge_threshold": 2.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ShardConfig(**kwargs)


class TestEnsureResumable:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            ensure_resumable(tmp_path / "nope")

    def test_not_a_directory(self, tmp_path):
        target = tmp_path / "file"
        target.write_text("x")
        with pytest.raises(CheckpointError, match="not a directory"):
            ensure_resumable(target)

    def test_empty_directory(self, tmp_path):
        target = tmp_path / "state"
        target.mkdir()
        with pytest.raises(CheckpointError, match="nothing to resume"):
            ensure_resumable(target)

    def test_tmp_litter_does_not_count(self, tmp_path):
        target = tmp_path / "state"
        target.mkdir()
        (target / "checkpoint.json.tmp").write_text("{}")
        with pytest.raises(CheckpointError, match="nothing to resume"):
            ensure_resumable(target)

    def test_populated_directory_passes(self, tmp_path):
        target = tmp_path / "state"
        target.mkdir()
        (target / "checkpoint.json").write_text("{}")
        ensure_resumable(target)


class TestManifest:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(CheckpointError, match="no shard manifest"):
            read_manifest(tmp_path)

    def test_corrupt_manifest(self, tmp_path):
        with open(manifest_path(tmp_path), "w", encoding="utf-8") as handle:
            handle.write("{truncated")
        with pytest.raises(CheckpointError, match="corrupt"):
            read_manifest(tmp_path)

    def test_foreign_format(self, tmp_path):
        with open(manifest_path(tmp_path), "w", encoding="utf-8") as handle:
            json.dump({"format": "something/else"}, handle)
        with pytest.raises(CheckpointError, match="manifest"):
            read_manifest(tmp_path)


class TestJournalRecords:
    def test_batch_routes_round_trip(self, tmp_path):
        path = dispatch_path(tmp_path)
        with StreamJournal(path, fsync=False) as journal:
            journal.append_batch(0, [[1, 2], [3]], routes=[1, 0])
            journal.append_batch(1, [[2, 2]])
        records = list(read_journal(path))
        assert records == [
            BatchRecord(ordinal=0, sequences=[[1, 2], [3]], routes=[1, 0]),
            BatchRecord(ordinal=1, sequences=[[2, 2]], routes=None),
        ]

    def test_plan_records_round_trip(self, tmp_path):
        path = dispatch_path(tmp_path)
        plan = {"0": {"merge": [], "dismiss": [4]}}
        with StreamJournal(path, fsync=False) as journal:
            journal.append_batch(0, [[1]], routes=[0])
            journal.append_plan(1, 1, plan)
        records = list(read_journal(path))
        assert isinstance(records[1], PlanRecord)
        assert records[1] == PlanRecord(ordinal=1, round=1, plan=plan)

    def test_missing_journal_reads_as_empty(self, tmp_path):
        assert list(read_journal(tmp_path / "never-written.jsonl")) == []

    def test_append_after_torn_tail_does_not_weld(self, tmp_path):
        path = dispatch_path(tmp_path)
        with StreamJournal(path, fsync=False) as journal:
            journal.append_batch(0, [[1, 2]])
        # Crash mid-append: a half-written record with no newline.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "batch", "n": 1, "seq')
        with StreamJournal(path, fsync=False) as journal:
            journal.append_batch(1, [[3, 4]])
        records = list(read_journal(path))
        assert [record.ordinal for record in records] == [0, 1]
        assert records[1].sequences == [[3, 4]]


class TestShardEngine:
    def make_engine(self, state_dir=None):
        spec = {
            "alphabet": None,
            "alphabet_size": ALPHABET,
            "significance_threshold": 1,
            "similarity_threshold": 10.0,
            "max_depth": 3,
            "p_min": None,
            "max_nodes": None,
            "prune_strategy": "paper",
        }
        return build_shard_engine(
            spec,
            StreamConfig(
                batch_size=6,
                reseed_every=1,
                reseed_k=2,
                reseed_min_pool=4,
                checkpoint_every=100,
                seed=3,
            ),
            state_dir,
            resume=False,
        )

    def test_apply_plan_merges_and_dismisses(self):
        engine = self.make_engine()
        engine.ingest_batch(REGIME_A[:6])
        engine.ingest_batch(REGIME_B[:6])
        ids = [cluster.cluster_id for cluster in engine.result.clusters]
        assert len(ids) >= 2
        keep, drop = ids[0], ids[1]
        foreign = build_pst(REGIME_A[6:])
        before_nodes = {
            cluster.cluster_id: cluster.pst.node_count
            for cluster in engine.result.clusters
        }
        merged, dropped = engine.apply_plan(
            1,
            {
                "merge": [{"into": keep, "pst": foreign.to_dict()}],
                "dismiss": [drop],
            },
        )
        assert (merged, dropped) == (1, 1)
        assert engine.last_round == 1
        remaining = {c.cluster_id for c in engine.result.clusters}
        assert drop not in remaining
        kept = next(
            c for c in engine.result.clusters if c.cluster_id == keep
        )
        assert kept.pst.node_count >= before_nodes[keep]
        assert all(
            drop not in ids for ids in engine.result.assignments.values()
        )

    def test_apply_plan_rejects_unknown_target(self):
        engine = self.make_engine()
        engine.ingest_batch(REGIME_A[:6])
        with pytest.raises(ValueError, match="merge target"):
            engine.apply_plan(
                1,
                {"merge": [{"into": 999, "pst": build_pst([]).to_dict()}]},
            )

    def test_recovery_replays_plans_interleaved(self, tmp_path):
        from repro.shard.engine import shard_state_digest

        state_dir = tmp_path / "shard"
        engine = self.make_engine(state_dir)
        engine.ingest_batch(REGIME_A[:6])
        keep = engine.result.clusters[0].cluster_id
        engine.apply_plan(
            1, {"merge": [{"into": keep, "pst": build_pst(REGIME_A[6:]).to_dict()}]}
        )
        engine.ingest_batch(REGIME_B[:6])
        expected = shard_state_digest(engine)
        engine.close()

        recovered = ShardEngine.recover(state_dir)
        assert shard_state_digest(recovered) == expected
        assert recovered.last_round == 1
        recovered.close()

    def test_checkpoint_carries_last_round(self, tmp_path):
        from repro.shard.engine import shard_state_digest

        state_dir = tmp_path / "shard"
        engine = self.make_engine(state_dir)
        engine.ingest_batch(REGIME_A[:6])
        engine.apply_plan(2, {"dismiss": []})
        engine.checkpoint()
        expected = shard_state_digest(engine)
        engine.close()
        # Wipe the journal suffix: the checkpoint alone must restore
        # last_round via the `extra` hook.
        os.remove(os.path.join(state_dir, "journal.jsonl"))
        recovered = ShardEngine.recover(state_dir)
        assert recovered.last_round == 2
        assert shard_state_digest(recovered) == expected
        recovered.close()
