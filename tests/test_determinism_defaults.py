"""Regression tests for the seeded rng-fallback policy (CLQ002).

The invariant checker's determinism rule surfaced call sites that
created unseeded generators when the caller omitted ``rng``. The fix
gives every such function a fixed seed-0 fallback *per call*: rng-less
calls are reproducible, and two identical rng-less calls return the
same output. These tests pin that contract.
"""

from __future__ import annotations

import numpy as np

from repro.core.cluseq import ClusteringResult, CluseqParams
from repro.core.pst import ProbabilisticSuffixTree
from repro.sequences.markov import random_markov_source
from repro.sequences.mutations import block_shuffle, indels, point_mutations


def test_point_mutations_rngless_is_deterministic():
    encoded = list(range(8)) * 10
    a = point_mutations(encoded, rate=0.5, alphabet_size=8)
    b = point_mutations(encoded, rate=0.5, alphabet_size=8)
    assert a == b
    assert a != encoded  # rate 0.5 on 80 symbols: certain to differ


def test_indels_rngless_is_deterministic():
    encoded = list(range(6)) * 10
    assert indels(encoded, 0.4, 6) == indels(encoded, 0.4, 6)


def test_block_shuffle_rngless_is_deterministic():
    encoded = list(range(40))
    assert block_shuffle(encoded, 5) == block_shuffle(encoded, 5)


def test_markov_sample_rngless_is_deterministic():
    source = random_markov_source(4, order=1, rng=np.random.default_rng(7))
    assert source.sample(50) == source.sample(50)


def test_random_markov_source_rngless_is_deterministic():
    a = random_markov_source(4, order=1)
    b = random_markov_source(4, order=1)
    assert a.sample(30, np.random.default_rng(1)) == b.sample(
        30, np.random.default_rng(1)
    )


def test_pst_sample_rngless_is_deterministic():
    pst = ProbabilisticSuffixTree(
        alphabet_size=2, max_depth=3, significance_threshold=2
    )
    pst.add_sequence([0, 1, 0, 1, 0, 1, 0, 1])
    assert pst.sample(30) == pst.sample(30)


def test_assign_and_absorb_without_clusters_records_outlier():
    """Empty clusterings must record the sequence as an outlier
    (regression guard for the typed rewrite of the best-pick loop)."""
    result = ClusteringResult(
        clusters=[],
        assignments={},
        params=CluseqParams(),
        background=np.full(2, 0.5),
        final_log_threshold=0.0,
    )
    assert result.assign_and_absorb([0, 1, 0]) is None
    assert result.assignments == {0: set()}
    # A second outlier gets the next index, not a clobbered slot.
    assert result.assign_and_absorb([1, 0, 1]) is None
    assert result.assignments == {0: set(), 1: set()}
