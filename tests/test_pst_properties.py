"""Property-based tests (hypothesis) for the probabilistic suffix tree."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pst import ProbabilisticSuffixTree

sequences = st.lists(
    st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=40),
    min_size=1,
    max_size=6,
)


def reference_count(seqs, segment):
    """Occurrences of *segment* across all sequences."""
    total = 0
    m = len(segment)
    for seq in seqs:
        total += sum(
            1 for i in range(len(seq) - m + 1) if seq[i : i + m] == segment
        )
    return total


@settings(max_examples=60, deadline=None)
@given(sequences, st.lists(st.integers(0, 3), min_size=1, max_size=3))
def test_counts_match_reference(seqs, segment):
    """Every node count equals the true occurrence count of its label."""
    pst = ProbabilisticSuffixTree(alphabet_size=4, max_depth=3)
    for seq in seqs:
        pst.add_sequence(seq)
    assert pst.count_of(segment) == reference_count(seqs, segment)


@settings(max_examples=60, deadline=None)
@given(sequences)
def test_root_count_is_total_length(seqs):
    pst = ProbabilisticSuffixTree(alphabet_size=4, max_depth=3)
    for seq in seqs:
        pst.add_sequence(seq)
    assert pst.total_symbols == sum(len(s) for s in seqs)


@settings(max_examples=60, deadline=None)
@given(sequences)
def test_child_counts_bounded_by_parent(seqs):
    """A child's label extends the parent's, so its count can't exceed it."""
    pst = ProbabilisticSuffixTree(alphabet_size=4, max_depth=4)
    for seq in seqs:
        pst.add_sequence(seq)
    for _, node in pst.iter_nodes():
        for child in node.children.values():
            assert child.count <= node.count


@settings(max_examples=60, deadline=None)
@given(sequences)
def test_next_counts_consistent_with_children(seqs):
    """The next-symbol total of a node equals its count minus the
    occurrences of its label at a sequence end."""
    pst = ProbabilisticSuffixTree(alphabet_size=4, max_depth=3)
    for seq in seqs:
        pst.add_sequence(seq)
    for label, node in pst.iter_nodes():
        if label == ():
            continue
        m = len(label)
        terminal = sum(1 for seq in seqs if tuple(seq[-m:]) == label)
        assert node.next_total == node.count - terminal


@settings(max_examples=60, deadline=None)
@given(sequences, st.lists(st.integers(0, 3), min_size=0, max_size=5))
def test_probability_vector_normalised(seqs, context):
    pst = ProbabilisticSuffixTree(alphabet_size=4, max_depth=3, p_min=1e-3)
    for seq in seqs:
        pst.add_sequence(seq)
    vec = pst.probability_vector(context)
    assert np.isclose(vec.sum(), 1.0)
    assert (vec >= 0).all()


@settings(max_examples=60, deadline=None)
@given(sequences, st.lists(st.integers(0, 3), min_size=0, max_size=5))
def test_prediction_node_is_significant_suffix(seqs, context):
    """The prediction node's label is a significant suffix of the context."""
    pst = ProbabilisticSuffixTree(
        alphabet_size=4, max_depth=3, significance_threshold=2
    )
    for seq in seqs:
        pst.add_sequence(seq)
    suffix = pst.longest_significant_suffix(context)
    assert tuple(context[len(context) - len(suffix) :]) == suffix
    if suffix:
        assert pst.count_of(list(suffix)) >= 2


@settings(max_examples=40, deadline=None)
@given(sequences)
def test_serialization_roundtrip(seqs):
    pst = ProbabilisticSuffixTree(alphabet_size=4, max_depth=3)
    for seq in seqs:
        pst.add_sequence(seq)
    clone = ProbabilisticSuffixTree.from_dict(pst.to_dict())
    assert clone.node_count == pst.node_count
    labels = {label: node.count for label, node in pst.iter_nodes()}
    clone_labels = {label: node.count for label, node in clone.iter_nodes()}
    assert labels == clone_labels


@settings(max_examples=40, deadline=None)
@given(sequences)
def test_node_count_cache_accurate(seqs):
    pst = ProbabilisticSuffixTree(alphabet_size=4, max_depth=3)
    for seq in seqs:
        pst.add_sequence(seq)
    cached = pst.node_count
    assert pst.recount_nodes() == cached
