"""Tests for repro.core.threshold — valley detection & t adjustment."""

import math

import numpy as np
import pytest

from repro.core.threshold import (
    VALLEY_METHODS,
    ValleyResult,
    blend_threshold,
    build_histogram,
    find_valley,
    find_valley_otsu,
    thresholds_converged,
)


def bimodal_sample(rng, low_mean=2.0, high_mean=30.0, n_low=800, n_high=200):
    """Log-sims with a dense low mode and a sparse high mode."""
    low = rng.normal(low_mean, 0.7, size=n_low)
    high = rng.normal(high_mean, 4.0, size=n_high)
    return np.concatenate([low, high]).tolist()


class TestBuildHistogram:
    def test_shapes(self, rng):
        centers, counts = build_histogram(bimodal_sample(rng), buckets=50)
        assert centers.shape == (50,)
        assert counts.shape == (50,)
        assert counts.sum() > 0

    def test_top_tail_dropped(self, rng):
        values = [1.0] * 99 + [1000.0]
        centers, counts = build_histogram(values, buckets=10, upper_quantile=0.95)
        # The 1000 outlier is beyond the clip: not folded anywhere.
        assert counts.sum() == 99
        assert centers.max() < 1000

    def test_degenerate_identical_values(self):
        centers, counts = build_histogram([3.0] * 50, buckets=10)
        assert counts.sum() == 50

    def test_nonfinite_filtered(self):
        centers, counts = build_histogram(
            [1.0, 2.0, float("inf"), float("nan"), float("-inf")],
            buckets=3,
            upper_quantile=1.0,
        )
        assert counts.sum() == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            build_histogram([1.0], buckets=2)
        with pytest.raises(ValueError):
            build_histogram([1.0], upper_quantile=0.0)
        with pytest.raises(ValueError):
            build_histogram([], buckets=10)


class TestRegressionValley:
    def test_finds_spike_edge(self, rng):
        """On a declining spike + flat tail the valley sits at the spike
        edge: above the low mode's centre, below the high mode's."""
        values = bimodal_sample(rng)
        result = find_valley(values, buckets=100)
        assert result is not None
        assert min(values) <= result.log_threshold <= 30.0
        # Must cut off at least the left half of the low mode.
        below = sum(1 for v in values if v < result.log_threshold)
        assert below >= 0.2 * len(values)

    def test_insufficient_data_returns_none(self):
        assert find_valley([1.0, 2.0, 3.0]) is None

    def test_result_fields(self, rng):
        result = find_valley(bimodal_sample(rng))
        assert isinstance(result, ValleyResult)
        assert result.threshold == pytest.approx(math.exp(result.log_threshold))
        assert result.slope_difference > 0
        assert 0 < result.bucket_index < len(result.bin_centers) - 1


class TestOtsuValley:
    def test_lands_between_modes(self, rng):
        values = bimodal_sample(rng)
        result = find_valley_otsu(values, buckets=100)
        assert result is not None
        # Otsu should separate the 2-centred mode from the 30-centred one.
        assert 4.0 < result.log_threshold < 29.0

    def test_insufficient_data_returns_none(self):
        assert find_valley_otsu([5.0] * 5) is None

    def test_registry_contains_both(self):
        assert set(VALLEY_METHODS) == {"regression", "otsu"}
        assert VALLEY_METHODS["regression"] is find_valley
        assert VALLEY_METHODS["otsu"] is find_valley_otsu


class TestBlend:
    def test_paper_rule(self):
        assert blend_threshold(1.0, 2.0) == pytest.approx(1.5)

    def test_symmetric(self):
        assert blend_threshold(3.0, 1.0) == blend_threshold(1.0, 3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            blend_threshold(0.0, 1.0)
        with pytest.raises(ValueError):
            blend_threshold(1.0, -1.0)


class TestConvergence:
    def test_within_one_percent(self):
        assert thresholds_converged(2.0, 2.01)
        assert thresholds_converged(2.0, 1.995)

    def test_outside_one_percent(self):
        assert not thresholds_converged(2.0, 2.5)
        assert not thresholds_converged(1.0, 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            thresholds_converged(0.0, 1.0)


class TestStability:
    def test_valley_robust_to_sample_noise(self, rng):
        """Estimates from two samples of the same distribution agree
        to within a few buckets."""
        a = find_valley_otsu(bimodal_sample(np.random.default_rng(1)))
        b = find_valley_otsu(bimodal_sample(np.random.default_rng(2)))
        assert abs(a.log_threshold - b.log_threshold) < 8.0

    def test_unimodal_does_not_crash(self, rng):
        values = rng.normal(5.0, 1.0, size=500).tolist()
        for finder in VALLEY_METHODS.values():
            result = finder(values)
            assert result is None or math.isfinite(result.log_threshold)
