"""Crash/chaos recovery for the sharded streaming engine.

The contract under test: a sharded engine killed at *any* durability
boundary — any ``os.fsync`` or ``os.replace`` of any shard's WAL or
checkpoint, the coordinator's dispatch WAL, the manifest, the router
snapshot — can be rebuilt by ``ShardedStreamingCluseq.recover`` and,
after ingesting the rest of the stream, reaches state bit-identical to
a run that was never interrupted.

The sweep is exhaustive where it is cheapest and sharpest (every fsync
point at shards=2, every replace point at shards ∈ {1, 2, 4}) and
strided elsewhere; the multi-process runner gets coordinator-side
faults via the same injector plus real worker kills through the
``REPRO_SHARD_CHAOS_*`` hooks in ``repro.shard.proc``. Fault
injection lives in the pytest-free ``tests/chaos.py``.

``CHAOS_SMOKE=1`` (the CI shard-smoke job) strides every sweep harder
so the file finishes in seconds while still crossing each boundary
kind at least once.
"""

import json
import os

import pytest

from chaos import CrashPoint, FaultInjector, count_fault_points
from repro.shard import ShardConfig, ShardedStreamingCluseq
from repro.shard.proc import ShardWorkerError
from repro.stream import (
    CheckpointError,
    DecayPolicy,
    StreamConfig,
    drifting_markov_stream,
)

ALPHABET_SIZE = 8

#: CI smoke mode: cross every boundary kind, skip the long tail.
SMOKE = bool(os.environ.get("CHAOS_SMOKE"))


@pytest.fixture(scope="module")
def stream():
    return drifting_markov_stream(
        80,
        40,
        alphabet_size=ALPHABET_SIZE,
        mean_length=30,
        concentration=0.05,
        seed=11,
    )


def make_config(shards, runner="inprocess", router="hash"):
    # Tight cadences on purpose: 8 global batches hit 2 consolidation
    # rounds, periodic checkpoints and decay, so the fault sweep
    # crosses every kind of durability boundary the engine has.
    return ShardConfig(
        shards=shards,
        router=router,
        runner=runner,
        consolidate_every=4,
        merge_threshold=0.8,
        stream=StreamConfig(
            batch_size=10,
            pool_size=64,
            reseed_every=2,
            reseed_k=2,
            reseed_min_pool=6,
            consolidate_every=8,
            adjust_every=5,
            decay=DecayPolicy(factor=0.9, every_batches=6),
            checkpoint_every=3,
            seed=3,
        ),
    )


def make_engine(config, state_dir):
    return ShardedStreamingCluseq.cold_start(
        alphabet_size=ALPHABET_SIZE,
        similarity_threshold=10.0,
        significance_threshold=3,
        max_depth=4,
        config=config,
        state_dir=state_dir,
    )


def full_digest(engine):
    """Everything recovery must reproduce, JSON-normalized."""
    return json.dumps(
        {
            "shards": engine.shard_states(),
            "batches": engine.batches_ingested,
            "sequences": engine.sequences_ingested,
            "stats": {
                key: value
                for key, value in engine.stats().to_dict().items()
                if key != "per_shard"
            },
        },
        sort_keys=True,
    )


def feed(engine, sequences):
    for seq in sequences:
        engine.ingest(seq)
    engine.flush()


def reference_digest(shards, stream, router="hash"):
    """The uncrashed run (memory-only; durability must not change it)."""
    engine = make_engine(make_config(shards, router=router), None)
    feed(engine, stream.sequences)
    digest = full_digest(engine)
    engine.close()
    return digest


def abandon(engine):
    """Drop an engine as a kill would — but reap worker processes."""
    if engine is None:
        return
    for handle in engine.handles:
        try:
            handle.close()
        except Exception:
            pass


def recover_and_finish(config, state_dir, stream):
    """Recover (or restart, when nothing was durable) and feed the rest."""
    try:
        recovered = ShardedStreamingCluseq.recover(state_dir)
    except CheckpointError:
        # The crash predates a durable manifest: provably nothing was
        # ingested durably, so a cold start in place is the bit-exact
        # continuation (only *.tmp litter can exist in the dir).
        recovered = make_engine(config, state_dir)
    feed(recovered, stream.sequences[recovered.sequences_ingested :])
    recovered.checkpoint()
    digest = full_digest(recovered)
    recovered.close()
    return digest


def crash_points(config, tmp_path, stream, kind):
    """Dry-run the full workload and count its *kind* fault points."""

    def workload():
        engine = make_engine(config, tmp_path / "dry")
        feed(engine, stream.sequences)
        engine.checkpoint()
        engine.close()

    return count_fault_points(workload, kind=kind)


def run_chaos_sweep(shards, stream, tmp_path, kind, stride):
    config = make_config(shards)
    expected = reference_digest(shards, stream)
    total = crash_points(config, tmp_path, stream, kind)
    assert total > 0, f"workload performed no {kind} calls"
    points = list(range(1, total + 1))[::stride]
    for crash_at in points:
        state_dir = tmp_path / f"crash-{kind}-{crash_at}"
        injector = FaultInjector(crash_at=crash_at, kind=kind)
        engine = None
        crashed = False
        with injector.armed():
            try:
                engine = make_engine(config, state_dir)
                feed(engine, stream.sequences)
                engine.checkpoint()
            except CrashPoint:
                crashed = True
        assert crashed, f"injector never fired at {kind} #{crash_at}"
        abandon(engine)
        digest = recover_and_finish(config, state_dir, stream)
        assert digest == expected, (
            f"shards={shards}: recovery after a crash at {kind} "
            f"#{crash_at}/{total} diverged from the uncrashed run"
        )


class TestChaosInProcess:
    def test_every_fsync_boundary_two_shards(self, stream, tmp_path):
        run_chaos_sweep(2, stream, tmp_path, "fsync", stride=5 if SMOKE else 1)

    @pytest.mark.parametrize("shards", [1, 4])
    def test_strided_fsync_boundaries(self, shards, stream, tmp_path):
        run_chaos_sweep(
            shards, stream, tmp_path, "fsync", stride=11 if SMOKE else 3
        )

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_every_replace_boundary(self, shards, stream, tmp_path):
        # os.replace publishes checkpoints and the manifest — few
        # sites, each one a distinct atomic-rename protocol to break.
        run_chaos_sweep(
            shards, stream, tmp_path, "replace", stride=3 if SMOKE else 1
        )

    def test_crash_during_recovery_recovers(self, stream, tmp_path):
        """Roll-forward itself dying must leave a recoverable dir."""
        config = make_config(2)
        expected = reference_digest(2, stream)
        state_dir = tmp_path / "state"
        engine = make_engine(config, state_dir)
        # Crash the first run mid-stream, past a consolidation round.
        injector = FaultInjector(crash_at=30, kind="fsync")
        with injector.armed():
            try:
                feed(engine, stream.sequences)
                engine.checkpoint()
            except CrashPoint:
                pass
        abandon(engine)
        # First recovery attempt dies while rolling forward.
        injector = FaultInjector(crash_at=3, kind="fsync")
        with injector.armed():
            try:
                ShardedStreamingCluseq.recover(state_dir)
            except CrashPoint:
                pass
        # Second attempt must still converge.
        digest = recover_and_finish(config, state_dir, stream)
        assert digest == expected


class TestChaosMultiProcess:
    def test_coordinator_fsync_boundaries(self, stream, tmp_path):
        """Coordinator-side faults with real worker processes attached."""
        config = make_config(2, runner="process")
        expected = reference_digest(2, stream)
        total = crash_points(config, tmp_path, stream, "fsync")
        points = list(range(1, total + 1))[:: 5 if SMOKE else 2]
        for crash_at in points:
            state_dir = tmp_path / f"crash-{crash_at}"
            injector = FaultInjector(crash_at=crash_at, kind="fsync")
            engine = None
            with injector.armed():
                try:
                    engine = make_engine(config, state_dir)
                    feed(engine, stream.sequences)
                    engine.checkpoint()
                    crashed = False
                except CrashPoint:
                    crashed = True
            assert crashed, f"injector never fired at fsync #{crash_at}"
            abandon(engine)
            digest = recover_and_finish(config, state_dir, stream)
            assert digest == expected, (
                f"process runner: coordinator crash at fsync "
                f"#{crash_at}/{total} diverged from the uncrashed run"
            )

    @pytest.mark.parametrize(
        ("fsync_at", "shard"),
        [(1, 0), (2, 0), (5, 1), (9, 1)] if not SMOKE else [(1, 0), (5, 1)],
    )
    def test_worker_killed_mid_fsync(
        self, stream, tmp_path, monkeypatch, fsync_at, shard
    ):
        """A worker hard-killed (os._exit) at its N-th fsync."""
        config = make_config(2, runner="process")
        expected = reference_digest(2, stream)
        state_dir = tmp_path / "state"
        monkeypatch.setenv("REPRO_SHARD_CHAOS_FSYNC_AT", str(fsync_at))
        monkeypatch.setenv("REPRO_SHARD_CHAOS_SHARD", str(shard))
        engine = None
        with pytest.raises(ShardWorkerError):
            engine = make_engine(config, state_dir)
            feed(engine, stream.sequences)
            engine.checkpoint()
        abandon(engine)
        # Recovery must not inherit the kill switch.
        monkeypatch.delenv("REPRO_SHARD_CHAOS_FSYNC_AT")
        monkeypatch.delenv("REPRO_SHARD_CHAOS_SHARD")
        digest = recover_and_finish(config, state_dir, stream)
        assert digest == expected, (
            f"process runner: shard {shard} killed at its fsync "
            f"#{fsync_at} diverged from the uncrashed run"
        )


class TestChaosPstRouter:
    def test_fsync_boundaries_with_router_snapshot(self, stream, tmp_path):
        """The router.json publish is a crash point like any other."""
        config = make_config(2, router="pst")
        expected = reference_digest(2, stream, router="pst")
        total = crash_points(config, tmp_path, stream, "fsync")
        points = list(range(1, total + 1))[:: 13 if SMOKE else 4]
        for crash_at in points:
            state_dir = tmp_path / f"crash-{crash_at}"
            injector = FaultInjector(crash_at=crash_at, kind="fsync")
            engine = None
            crashed = False
            with injector.armed():
                try:
                    engine = make_engine(config, state_dir)
                    feed(engine, stream.sequences)
                    engine.checkpoint()
                except CrashPoint:
                    crashed = True
            assert crashed
            abandon(engine)
            digest = recover_and_finish(config, state_dir, stream)
            assert digest == expected, (
                f"pst router: crash at fsync #{crash_at}/{total} "
                "diverged from the uncrashed run"
            )
