"""Tests for repro.sequences.markov."""

import numpy as np
import pytest

from repro.sequences.markov import (
    MarkovSource,
    random_markov_source,
    uniform_source,
)


def deterministic_source():
    """Order-1 source over {0,1} that strictly alternates."""
    return MarkovSource(
        2,
        order=1,
        transitions={
            (): np.array([1.0, 0.0]),
            (0,): np.array([0.0, 1.0]),
            (1,): np.array([1.0, 0.0]),
        },
    )


class TestConstruction:
    def test_missing_empty_context_rejected(self):
        with pytest.raises(ValueError, match="empty context"):
            MarkovSource(2, 1, {(0,): np.array([0.5, 0.5])})

    def test_wrong_vector_length_rejected(self):
        with pytest.raises(ValueError, match="length"):
            MarkovSource(2, 0, {(): np.array([1.0, 0.0, 0.0])})

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            MarkovSource(2, 0, {(): np.array([1.5, -0.5])})

    def test_zero_sum_rejected(self):
        with pytest.raises(ValueError, match="sum to 0"):
            MarkovSource(2, 0, {(): np.array([0.0, 0.0])})

    def test_vectors_are_normalized(self):
        source = MarkovSource(2, 0, {(): np.array([2.0, 2.0])})
        assert np.allclose(source.distribution_for([]), [0.5, 0.5])

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            MarkovSource(0, 0, {(): np.array([])})
        with pytest.raises(ValueError):
            MarkovSource(2, -1, {(): np.array([0.5, 0.5])})


class TestSampling:
    def test_deterministic_alternation(self, rng):
        source = deterministic_source()
        sample = source.sample(10, rng)
        assert sample == [0, 1, 0, 1, 0, 1, 0, 1, 0, 1]

    def test_sample_length(self, rng):
        assert len(uniform_source(4).sample(17, rng)) == 17
        assert uniform_source(4).sample(0, rng) == []

    def test_negative_length_rejected(self, rng):
        with pytest.raises(ValueError):
            uniform_source(2).sample(-1, rng)

    def test_sample_many_lengths_near_mean(self, rng):
        sequences = uniform_source(4).sample_many(50, 100, rng, length_jitter=0.1)
        lengths = [len(s) for s in sequences]
        assert len(sequences) == 50
        assert 80 <= np.mean(lengths) <= 120
        assert min(lengths) >= 2

    def test_sample_many_zero_count(self, rng):
        assert uniform_source(2).sample_many(0, 10, rng) == []

    def test_symbols_in_range(self, rng):
        for sample in random_markov_source(5, rng=rng).sample_many(5, 30, rng):
            assert all(0 <= symbol < 5 for symbol in sample)


class TestSuffixFallback:
    def test_falls_back_to_shorter_context(self):
        source = MarkovSource(
            2,
            order=2,
            transitions={
                (): np.array([0.5, 0.5]),
                (1,): np.array([0.9, 0.1]),
            },
        )
        # Context (0, 1): no order-2 entry, falls back to (1,).
        assert np.allclose(source.distribution_for([0, 1]), [0.9, 0.1])
        # Context (0, 0): no entries at any depth, falls back to ().
        assert np.allclose(source.distribution_for([0, 0]), [0.5, 0.5])

    def test_order_zero_ignores_context(self):
        source = uniform_source(3)
        assert np.allclose(
            source.distribution_for([0, 1, 2]), source.distribution_for([])
        )


class TestLogLikelihood:
    def test_deterministic_sequence_probability_one(self):
        source = deterministic_source()
        assert source.log_likelihood([0, 1, 0, 1]) == pytest.approx(0.0)

    def test_impossible_sequence(self):
        source = deterministic_source()
        assert source.log_likelihood([1]) == float("-inf")

    def test_uniform_likelihood(self):
        source = uniform_source(4)
        assert source.log_likelihood([0, 1, 2]) == pytest.approx(3 * np.log(0.25))


class TestRandomSource:
    def test_contexts_present(self, rng):
        source = random_markov_source(3, order=2, rng=rng)
        assert () in dict.fromkeys(source.contexts)
        assert source.order == 2

    def test_context_fraction_validation(self, rng):
        with pytest.raises(ValueError):
            random_markov_source(3, context_fraction=1.5, rng=rng)

    def test_reproducible_with_seed(self):
        a = random_markov_source(4, rng=np.random.default_rng(5))
        b = random_markov_source(4, rng=np.random.default_rng(5))
        assert np.allclose(a.distribution_for([1]), b.distribution_for([1]))

    def test_max_contexts_cap(self, rng):
        source = random_markov_source(
            6, order=2, rng=rng, max_contexts=5
        )
        order2 = [c for c in source.contexts if len(c) == 2]
        assert len(order2) <= 5
