"""Tests for repro.baselines.block_edit."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.block_edit import (
    BlockEditClusterer,
    block_edit_distance,
    longest_common_substring,
    normalized_block_edit_distance,
    pairwise_block_distance_matrix,
)
from repro.sequences.database import SequenceDatabase

ENC = {c: i for i, c in enumerate("abcdefgxyz")}


def encode(text):
    return [ENC[c] for c in text]


class TestLongestCommonSubstring:
    @pytest.mark.parametrize(
        "a,b,expected_len",
        [
            ("abcdef", "zabcz", 3),  # "abc"
            ("abc", "xyz", 0),
            ("aaa", "aaa", 3),
            ("", "abc", 0),
            ("abc", "", 0),
            ("ababab", "babab", 5),
        ],
    )
    def test_lengths(self, a, b, expected_len):
        length, _, _ = longest_common_substring(encode(a), encode(b))
        assert length == expected_len

    def test_positions_point_to_match(self):
        a, b = encode("xxabcyy"), encode("zzzabc")
        length, sa, sb = longest_common_substring(a, b)
        assert a[sa : sa + length] == b[sb : sb + length]
        assert length == 3


class TestBlockEditDistance:
    def test_paper_example_block_rearrangement(self):
        """The paper's footnote: aaaabbb vs bbbaaaa should be cheap with
        block operations, while aaaabbb vs abcdefg stays expensive."""
        rearranged = block_edit_distance(encode("aaaabbb"), encode("bbbaaaa"))
        unrelated = block_edit_distance(encode("aaaabbb"), encode("abcdefg"))
        assert rearranged < unrelated
        assert rearranged <= 2.0  # two block moves

    def test_identical_sequences(self):
        assert block_edit_distance(encode("abcabc"), encode("abcabc")) == 1.0

    def test_empty_sequences(self):
        assert block_edit_distance([], []) == 0.0
        assert block_edit_distance(encode("abc"), []) == 3.0

    def test_min_block_validation(self):
        with pytest.raises(ValueError):
            block_edit_distance([0], [0], min_block=0)

    def test_short_matches_counted_as_edits(self):
        # Common substrings below min_block are charged per symbol.
        d = block_edit_distance(encode("ab"), encode("ba"), min_block=3)
        assert d == 2.0

    def test_normalized_range(self):
        assert normalized_block_edit_distance(encode("abc"), encode("abc")) <= 1.0
        assert normalized_block_edit_distance([], []) == 0.0


class TestMatrix:
    def test_symmetric(self):
        sequences = [encode("aabb"), encode("bbaa"), encode("abab")]
        matrix = pairwise_block_distance_matrix(sequences)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0)


class TestClusterer:
    def test_groups_block_rearrangements(self):
        db = SequenceDatabase.from_strings(
            [
                "aaaabbbb",
                "bbbbaaaa",
                "aabbbbaa",
                "cdcdcdcd",
                "dcdcdcdc",
                "ccddccdd",
            ]
        )
        result = BlockEditClusterer(min_block=2, seed=0).fit_predict(db, 2)
        assert result.labels[0] == result.labels[1]
        assert result.labels[3] == result.labels[4]
        assert result.labels[0] != result.labels[3]
        assert result.model_name == "EDBO"

    def test_min_block_validation(self):
        with pytest.raises(ValueError):
            BlockEditClusterer(min_block=0)


sequences_strategy = st.lists(st.integers(0, 3), min_size=0, max_size=20)


@settings(max_examples=60, deadline=None)
@given(sequences_strategy, sequences_strategy)
def test_symmetric_within_greedy_tolerance(a, b):
    """Greedy factoring is order-dependent only in block choice, and the
    cost is symmetric because extraction removes from both sides."""
    assert block_edit_distance(a, b) == block_edit_distance(b, a)


@settings(max_examples=60, deadline=None)
@given(sequences_strategy)
def test_self_distance_small(a):
    """A sequence against itself costs at most ceil(len/min_block) blocks
    worth of operations (one when it is a single block)."""
    d = block_edit_distance(a, a, min_block=3)
    if len(a) == 0:
        assert d == 0.0
    else:
        assert d <= max(1.0, len(a) / 1.0)  # never exceeds per-symbol cost
        assert d <= len(a)


@settings(max_examples=60, deadline=None)
@given(sequences_strategy, sequences_strategy)
def test_nonnegative_and_bounded(a, b):
    d = block_edit_distance(a, b)
    assert d >= 0.0
    # Never worse than treating everything as per-symbol edits.
    assert d <= max(len(a), len(b)) + min(len(a), len(b)) / 3 + 1
