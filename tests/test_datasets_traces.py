"""Tests for the system-call trace dataset."""

from collections import Counter

import pytest

from repro.datasets.traces import ARCHETYPES, SYSCALLS, make_trace_database
from repro.sequences.database import OUTLIER_LABEL


class TestGeneration:
    def test_structure(self):
        db = make_trace_database(traces_per_archetype=10, seed=1)
        counts = Counter(db.labels)
        assert set(counts) == set(ARCHETYPES)
        assert all(v == 10 for v in counts.values())
        assert db.alphabet.size == len(SYSCALLS)

    def test_noise(self):
        db = make_trace_database(traces_per_archetype=10, noise_fraction=0.2, seed=1)
        counts = Counter(db.labels)
        assert counts[OUTLIER_LABEL] == 10  # 10 / 50 = 20%

    def test_validation(self):
        with pytest.raises(ValueError):
            make_trace_database(traces_per_archetype=0)
        with pytest.raises(ValueError):
            make_trace_database(noise_fraction=1.0)

    def test_reproducible(self):
        a = make_trace_database(traces_per_archetype=5, seed=9)
        b = make_trace_database(traces_per_archetype=5, seed=9)
        assert [r.symbols for r in a] == [r.symbols for r in b]


class TestBehaviouralSignatures:
    def test_network_daemon_uses_sockets(self):
        db = make_trace_database(traces_per_archetype=10, seed=2)
        for record in db:
            text = record.as_string()
            socket_mass = sum(text.count(ch) for ch in "savn")
            if record.label == "network_daemon":
                assert socket_mass > len(text) / 2
            elif record.label == "file_worker":
                assert socket_mass < len(text) / 4

    def test_scanner_dominated_by_stat(self):
        db = make_trace_database(traces_per_archetype=10, seed=3)
        for record in db:
            if record.label == "scanner":
                assert record.as_string().count("t") > len(record) / 5

    def test_archetypes_distinguishable_by_cluseq(self):
        from repro import cluster_sequences
        from repro.evaluation import evaluate_clustering

        db = make_trace_database(traces_per_archetype=25, seed=4)
        result = cluster_sequences(
            db, k=4, significance_threshold=4, min_unique_members=4,
            max_iterations=15, seed=1,
        )
        report = evaluate_clustering(db.labels, result.labels())
        assert report.accuracy >= 0.8
