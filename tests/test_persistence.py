"""Tests for saving/loading fitted clusterings."""

import io
import json

import numpy as np
import pytest

from repro.core.cluseq import cluster_sequences
from repro.core.persistence import (
    FORMAT_VERSION,
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)


@pytest.fixture(scope="module")
def fitted(request):
    from repro.sequences.generators import generate_two_cluster_toy

    db = generate_two_cluster_toy(size_per_cluster=20, length=30, seed=7)
    result = cluster_sequences(
        db,
        k=2,
        significance_threshold=2,
        min_unique_members=3,
        max_iterations=10,
        seed=1,
    )
    return db, result


class TestRoundtrip:
    def test_dict_roundtrip(self, fitted):
        _, result = fitted
        clone = result_from_dict(result_to_dict(result))
        assert clone.num_clusters == result.num_clusters
        assert clone.final_log_threshold == result.final_log_threshold
        assert clone.assignments == result.assignments
        assert clone.labels() == result.labels()
        assert np.allclose(clone.background, result.background)
        assert clone.params == result.params
        assert len(clone.history) == len(result.history)

    def test_file_roundtrip(self, fitted, tmp_path):
        _, result = fitted
        path = tmp_path / "model.json"
        save_result(result, path)
        clone = load_result(path)
        assert clone.labels() == result.labels()

    def test_stream_roundtrip(self, fitted):
        _, result = fitted
        buffer = io.StringIO()
        save_result(result, buffer)
        buffer.seek(0)
        clone = load_result(buffer)
        assert clone.num_clusters == result.num_clusters

    def test_predictions_survive(self, fitted):
        db, result = fitted
        clone = result_from_dict(result_to_dict(result))
        for index in range(0, len(db), 7):
            encoded = db.encoded(index)
            assert clone.predict(encoded) == result.predict(encoded)
            original = result.score_sequence(encoded)
            restored = clone.score_sequence(encoded)
            for cid, score in original.items():
                assert restored[cid].log_similarity == pytest.approx(
                    score.log_similarity
                )

    def test_memberships_survive(self, fitted):
        _, result = fitted
        clone = result_from_dict(result_to_dict(result))
        for cluster, cloned in zip(result.clusters, clone.clusters):
            assert cloned.members == cluster.members
            assert cloned.pst.node_count == cluster.pst.node_count


class TestAbsorbAfterRoundtrip:
    """Regression: ``assign_and_absorb`` after save -> load must pick a
    sequence index that collides with nothing already in the model."""

    def test_absorb_after_roundtrip_uses_fresh_index(self, fitted, tmp_path):
        db, result = fitted
        path = tmp_path / "model.json"
        save_result(result, path)
        clone = load_result(path)
        before = dict(clone.assignments)
        encoded = db.encoded(0)
        assigned = clone.assign_and_absorb(encoded)
        new_keys = set(clone.assignments) - set(before)
        assert len(new_keys) == 1
        new_index = new_keys.pop()
        assert new_index not in before
        # Every pre-existing assignment is untouched.
        for index, ids in before.items():
            assert clone.assignments[index] == ids
        if assigned is not None:
            member = clone.cluster_by_id(assigned).membership_of(new_index)
            assert member is not None

    def test_absorb_with_trimmed_assignments_no_collision(self, fitted):
        # A model whose assignment map was stripped (e.g. shipped for
        # inference only) used to hand out index 0 — colliding with the
        # clusters' member records and silently rewriting member 0.
        db, result = fitted
        payload = result_to_dict(result)
        payload["assignments"] = {}
        clone = result_from_dict(payload)
        memberships_before = {
            cluster.cluster_id: {
                index: cluster.membership_of(index)
                for index in cluster.members
            }
            for cluster in clone.clusters
        }
        encoded = db.encoded(0)
        new_index = clone.next_sequence_index()
        assert all(
            new_index not in cluster.members for cluster in clone.clusters
        )
        clone.assign_and_absorb(encoded)
        for cluster in clone.clusters:
            before = memberships_before[cluster.cluster_id]
            for index, membership in before.items():
                assert cluster.membership_of(index) == membership

    def test_predict_and_score_still_work_after_absorb(self, fitted, tmp_path):
        db, result = fitted
        clone = result_from_dict(result_to_dict(result))
        clone.assign_and_absorb(db.encoded(1))
        encoded = db.encoded(2)
        assert clone.predict(encoded) in (
            {c.cluster_id for c in clone.clusters} | {None}
        )
        scores = clone.score_sequence(encoded)
        assert set(scores) == {c.cluster_id for c in clone.clusters}

    def test_next_sequence_index_tops_members_and_assignments(self, fitted):
        _, result = fitted
        clone = result_from_dict(result_to_dict(result))
        top = max(
            max(clone.assignments, default=-1),
            max(
                (
                    max(cluster.members, default=-1)
                    for cluster in clone.clusters
                ),
                default=-1,
            ),
            max((c.seed_index for c in clone.clusters), default=-1),
        )
        assert clone.next_sequence_index() == top + 1


class TestFormat:
    def test_json_serializable(self, fitted):
        _, result = fitted
        text = json.dumps(result_to_dict(result))
        assert f'"format_version": {FORMAT_VERSION}' in text

    def test_unknown_version_rejected(self, fitted):
        _, result = fitted
        payload = result_to_dict(result)
        payload["format_version"] = 999
        with pytest.raises(ValueError, match="version"):
            result_from_dict(payload)
