"""Tests for repro.core.seeding — greedy min-max seed selection."""

from functools import partial

import numpy as np
import pytest

from repro.core.cluster import Cluster
from repro.core.seeding import build_seed_pst, select_seeds


@pytest.fixture
def toy_setup(toy_db):
    bg = toy_db.background_probabilities()
    factory = partial(
        build_seed_pst,
        alphabet_size=toy_db.alphabet.size,
        max_depth=4,
        significance_threshold=2,
        p_min=1e-3 / 4,
    )
    return toy_db, bg, factory


class TestBuildSeedPst:
    def test_single_sequence_model(self, toy_db):
        pst = build_seed_pst(
            toy_db.encoded(0),
            alphabet_size=4,
            max_depth=4,
            significance_threshold=2,
            p_min=0.0,
        )
        assert pst.sequences_added == 1
        assert pst.total_symbols == len(toy_db.encoded(0))

    def test_budget_forwarded(self, toy_db):
        pst = build_seed_pst(
            toy_db.encoded(0),
            alphabet_size=4,
            max_depth=4,
            significance_threshold=2,
            p_min=0.0,
            max_nodes=20,
        )
        assert pst.node_count <= 20


class TestSelectSeeds:
    def test_count_respected(self, toy_setup, rng):
        db, bg, factory = toy_setup
        seeds = select_seeds(
            candidates=list(range(len(db))),
            encoded_lookup=db.encoded,
            existing_clusters=[],
            background=bg,
            count=3,
            sample_multiplier=5,
            rng=rng,
            pst_factory=factory,
        )
        assert len(seeds) == 3
        indices = [s.sequence_index for s in seeds]
        assert len(set(indices)) == 3

    def test_zero_count(self, toy_setup, rng):
        db, bg, factory = toy_setup
        assert (
            select_seeds([], db.encoded, [], bg, 0, 5, rng, factory) == []
        )
        assert (
            select_seeds([1, 2], db.encoded, [], bg, 0, 5, rng, factory) == []
        )

    def test_fewer_candidates_than_count(self, toy_setup, rng):
        db, bg, factory = toy_setup
        seeds = select_seeds([3, 7], db.encoded, [], bg, 5, 5, rng, factory)
        assert len(seeds) == 2

    def test_seeds_diverse_across_clusters(self, toy_setup):
        """Selecting 2 seeds from the two-cluster toy should pick one
        from each true cluster (min-max diversity)."""
        db, bg, factory = toy_setup
        hits = 0
        for seed in range(5):
            rng = np.random.default_rng(seed)
            seeds = select_seeds(
                candidates=list(range(len(db))),
                encoded_lookup=db.encoded,
                existing_clusters=[],
                background=bg,
                count=2,
                sample_multiplier=5,
                rng=rng,
                pst_factory=factory,
            )
            labels = {db[s.sequence_index].label for s in seeds}
            if labels == {"ab", "cd"}:
                hits += 1
        assert hits >= 4  # diversity should almost always succeed

    def test_avoids_existing_clusters(self, toy_setup, rng):
        """With an existing 'ab' cluster, the next seed should come from
        the 'cd' population."""
        db, bg, factory = toy_setup
        ab_members = [i for i in range(len(db)) if db[i].label == "ab"]
        pst = factory(db.encoded(ab_members[0]))
        for i in ab_members[1:10]:
            pst.add_sequence(db.encoded(i))
        existing = Cluster(cluster_id=0, pst=pst, seed_index=ab_members[0])
        seeds = select_seeds(
            candidates=list(range(len(db))),
            encoded_lookup=db.encoded,
            existing_clusters=[existing],
            background=bg,
            count=1,
            sample_multiplier=8,
            rng=rng,
            pst_factory=factory,
        )
        assert db[seeds[0].sequence_index].label == "cd"

    def test_max_similarity_recorded(self, toy_setup, rng):
        db, bg, factory = toy_setup
        seeds = select_seeds(
            candidates=list(range(len(db))),
            encoded_lookup=db.encoded,
            existing_clusters=[],
            background=bg,
            count=2,
            sample_multiplier=5,
            rng=rng,
            pst_factory=factory,
        )
        # First seed has no references: -inf similarity recorded.
        assert seeds[0].max_similarity_log == float("-inf")
        # Second seed was scored against the first.
        assert seeds[1].max_similarity_log > float("-inf")
