"""Tests for the hot-path profiler (``repro.obs.profile``).

The load-bearing property is the zero-overhead contract: with the
default ``NULL_PROFILER`` active, instrumented call sites must neither
record anything nor allocate per-call objects — and enabling the
profiler must never change what the clustering computes (the golden
equivalence test at the bottom).
"""

from __future__ import annotations

import tracemalloc

import pytest

from repro.core.cluseq import CLUSEQ, CluseqParams
from repro.obs import (
    NULL_PROFILER,
    JsonlSpanExporter,
    MetricsRegistry,
    NullProfiler,
    Profiler,
    get_profiler,
    set_profiler,
    use_profiler,
    use_registry,
    use_span_exporter,
)
from repro.obs.profile import LATENCY_BUCKETS
from repro.sequences.generators import generate_clustered_database


class TestNullProfiler:
    def test_default_active_profiler_is_null(self):
        assert get_profiler() is NULL_PROFILER
        assert not get_profiler().enabled

    def test_kernel_returns_shared_noop_timer(self):
        timer_a = NULL_PROFILER.kernel("flatten")
        timer_b = NULL_PROFILER.kernel("kadane")
        assert timer_a is timer_b  # one object for every disabled site
        with timer_a:
            pass  # records nowhere, raises nothing

    def test_noop_methods_touch_no_registry(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            NULL_PROFILER.cache_hit("flat")
            NULL_PROFILER.cache_miss("flat")
            NULL_PROFILER.latency("wal_fsync", 0.001)
            NULL_PROFILER.gauge("model.clusters", 3)
            NULL_PROFILER.series("iteration.pst_nodes", 10)
            NULL_PROFILER.record_kernel("walk", 0.1)
            assert NULL_PROFILER.sample_memory() is None
        assert len(registry) == 0

    def test_disabled_paths_allocate_nothing(self):
        """The per-call footprint of the disabled profiler is zero.

        Warm the call sites, then diff tracemalloc snapshots (filtered
        to the obs modules) across many iterations: live allocations
        attributable to the profiler must not grow.
        """
        import repro.obs.metrics as metrics_mod
        import repro.obs.profile as profile_mod

        prof = get_profiler()
        assert prof is NULL_PROFILER

        def exercise() -> None:
            if prof.enabled:  # the guard real call sites use
                prof.cache_hit("flat")
            with prof.kernel("kadane"):
                pass
            prof.latency("wal_fsync", 0.0)

        for _ in range(10):
            exercise()
        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot()
            for _ in range(1000):
                exercise()
            after = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        filters = [
            tracemalloc.Filter(True, profile_mod.__file__),
            tracemalloc.Filter(True, metrics_mod.__file__),
        ]
        growth = sum(
            stat.size_diff
            for stat in after.filter_traces(filters).compare_to(
                before.filter_traces(filters), "lineno"
            )
        )
        assert growth <= 0, f"disabled profiler leaked {growth} bytes"


class TestProfiler:
    def test_kernel_timer_records(self):
        registry = MetricsRegistry()
        prof = Profiler(registry)
        with prof.kernel("kadane"):
            pass
        timer = registry.get("profile.kernel.kadane")
        assert timer.count == 1
        assert timer.total_seconds >= 0.0

    def test_cache_counters_and_latency(self):
        registry = MetricsRegistry()
        prof = Profiler(registry)
        prof.cache_hit("flat")
        prof.cache_hit("flat")
        prof.cache_miss("flat")
        prof.latency("wal_fsync", 3e-6)
        assert registry.get("profile.cache.flat.hits").value == 2
        assert registry.get("profile.cache.flat.misses").value == 1
        hist = registry.get("profile.latency.wal_fsync")
        assert hist.count == 1
        assert hist.bounds == LATENCY_BUCKETS

    def test_unbound_profiler_follows_active_registry(self):
        registry = MetricsRegistry()
        prof = Profiler()  # no bound registry
        with use_registry(registry):
            prof.gauge("model.clusters", 4)
        assert registry.get("profile.model.clusters").value == 4.0
        # outside the block, records go to the no-op registry
        prof.gauge("model.clusters", 9)
        assert registry.get("profile.model.clusters").value == 4.0

    def test_sample_memory_sets_gauge(self):
        registry = MetricsRegistry()
        prof = Profiler(registry)
        peak = prof.sample_memory()
        if peak is None:
            pytest.skip("no resource module on this platform")
        assert peak > 0
        assert registry.get("profile.memory.peak_rss_bytes").value == peak

    def test_set_profiler_returns_previous_and_none_disables(self):
        prof = Profiler(MetricsRegistry())
        previous = set_profiler(prof)
        try:
            assert get_profiler() is prof
            assert set_profiler(None) is prof
            assert get_profiler() is NULL_PROFILER
        finally:
            set_profiler(previous)

    def test_use_profiler_restores_on_exception(self):
        prof = Profiler(MetricsRegistry())
        with pytest.raises(RuntimeError):
            with use_profiler(prof):
                assert get_profiler() is prof
                raise RuntimeError("boom")
        assert get_profiler() is NULL_PROFILER

    def test_null_profiler_is_a_profiler(self):
        assert isinstance(NullProfiler(), Profiler)


class TestTelemetryDoesNotChangeResults:
    """Enabling every telemetry layer must be observationally invisible."""

    @pytest.fixture(scope="class")
    def toy_db(self):
        return generate_clustered_database(
            num_sequences=40,
            num_clusters=3,
            avg_length=40,
            alphabet_size=8,
            outlier_fraction=0.05,
            seed=11,
        ).database

    @staticmethod
    def _fingerprint(result):
        """Everything numeric the clustering decided, bit-for-bit."""
        memberships = []
        for cluster in sorted(result.clusters, key=lambda c: c.cluster_id):
            for index in sorted(cluster.members):
                member = cluster.membership_of(index)
                memberships.append(
                    (
                        cluster.cluster_id,
                        member.sequence_index,
                        member.log_similarity,
                        member.best_start,
                        member.best_end,
                    )
                )
        return {
            "labels": result.labels(),
            "final_log_threshold": result.final_log_threshold,
            "assignments": {
                k: sorted(v) for k, v in result.assignments.items()
            },
            "memberships": memberships,
            "converged": result.converged,
        }

    def test_golden_run_identical_with_telemetry_on(self, toy_db, tmp_path):
        params = CluseqParams(
            k=3, significance_threshold=2, max_iterations=4
        )
        plain = CLUSEQ(params).fit(toy_db)

        registry = MetricsRegistry()
        with JsonlSpanExporter(tmp_path / "trace.jsonl") as exporter:
            with use_registry(registry), use_profiler(
                Profiler()
            ), use_span_exporter(exporter):
                telemetered = CLUSEQ(params).fit(toy_db)

        assert self._fingerprint(plain) == self._fingerprint(telemetered)
        # and the telemetry run actually collected profile data
        assert any(
            name.startswith("profile.kernel.") for name in registry.snapshot()
        )
