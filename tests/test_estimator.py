"""Tests for the scikit-learn-style estimator facade."""

import pytest

from repro.core.estimator import CluseqClusterer, NotFittedError
from repro.sequences.alphabet import AlphabetError

X_TOY = (["ababab", "bababa", "abab", "baba"] * 5) + (
    ["cdcdcd", "dcdcdc", "cdcd", "dcdc"] * 5
)


def make_model(**overrides):
    params = dict(
        k=1, significance_threshold=2, min_unique_members=2, seed=0,
        max_iterations=15,
    )
    params.update(overrides)
    return CluseqClusterer(**params)


class TestProtocol:
    def test_fit_returns_self(self):
        model = make_model()
        assert model.fit(X_TOY) is model

    def test_labels_shape(self):
        labels = make_model().fit_predict(X_TOY)
        assert len(labels) == len(X_TOY)
        assert all(isinstance(v, int) for v in labels)

    def test_outliers_are_minus_one(self):
        model = make_model().fit(X_TOY)
        for label in model.labels_:
            assert label == -1 or label >= 0

    def test_y_ignored(self):
        labels = make_model().fit_predict(X_TOY, y=list(range(len(X_TOY))))
        assert len(labels) == len(X_TOY)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            make_model().fit([])

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            make_model().predict(["abab"])
        with pytest.raises(NotFittedError):
            _ = make_model().n_clusters_

    def test_predict_new_sequences(self):
        model = make_model().fit(X_TOY)
        predictions = model.predict(["abababab", "cdcdcdcd"])
        assert len(predictions) == 2
        # The two test sequences mirror the two behaviours; if both are
        # assigned, they should differ.
        assigned = [p for p in predictions if p >= 0]
        if len(assigned) == 2:
            assert predictions[0] != predictions[1]

    def test_predict_unknown_symbol_raises(self):
        model = make_model().fit(X_TOY)
        with pytest.raises(AlphabetError):
            model.predict(["xyz"])


class TestAttributes:
    def test_n_clusters(self):
        model = make_model().fit(X_TOY)
        assert model.n_clusters_ >= 1
        assert model.threshold_ > 0

    def test_get_set_params(self):
        model = make_model()
        params = model.get_params()
        assert params["k"] == 1
        model.set_params(k=3)
        assert model.params.k == 3
        # other params preserved
        assert model.params.significance_threshold == 2

    def test_set_params_validates(self):
        with pytest.raises(ValueError):
            make_model().set_params(k=0)

    def test_invalid_constructor_params(self):
        with pytest.raises(ValueError):
            CluseqClusterer(k=-1)


class TestTokenSequences:
    def test_non_string_tokens(self):
        X = [("up", "down") * 6, ("down", "up") * 6,
             ("left", "right") * 6, ("right", "left") * 6] * 4
        model = make_model().fit(X)
        assert len(model.labels_) == len(X)
        assert model.alphabet_.size == 4
