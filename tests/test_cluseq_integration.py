"""End-to-end behaviour of CLUSEQ on ground-truth workloads."""


from repro.core.cluseq import cluster_sequences
from repro.evaluation.metrics import evaluate_clustering
from repro.sequences.generators import generate_clustered_database


class TestToyRecovery:
    def test_two_clusters_recovered(self, toy_db):
        result = cluster_sequences(
            toy_db,
            k=2,
            significance_threshold=2,
            min_unique_members=3,
            max_iterations=20,
            seed=1,
        )
        report = evaluate_clustering(toy_db.labels, result.labels())
        # Both behaviours must be found; a pure split of one of them
        # into two clusters is acceptable on 60 sequences.
        assert 2 <= result.num_clusters <= 3
        assert report.purity >= 0.75


class TestSyntheticRecovery:
    def test_cluster_count_near_truth(self, small_synthetic):
        db = small_synthetic.database
        result = cluster_sequences(
            db,
            k=1,
            significance_threshold=4,
            min_unique_members=4,
            max_iterations=25,
            seed=1,
        )
        assert 3 <= result.num_clusters <= 6  # truth: 4
        report = evaluate_clustering(db.labels, result.labels())
        assert report.accuracy >= 0.6
        assert report.purity >= 0.8

    def test_k_independence(self, small_synthetic):
        """The paper's Table 5 claim: the final cluster count does not
        depend on the initial k."""
        db = small_synthetic.database
        finals = []
        for k in (1, 4, 8):
            result = cluster_sequences(
                db,
                k=k,
                significance_threshold=4,
                min_unique_members=4,
                max_iterations=25,
                seed=1,
            )
            finals.append(result.num_clusters)
        assert max(finals) - min(finals) <= 2

    def test_t_independence(self, small_synthetic):
        """The paper's Table 6 claim: the final threshold does not
        depend on the initial t (calibration replaces it)."""
        db = small_synthetic.database
        final_ts = []
        for t in (1.05, 2.0, 3.0):
            result = cluster_sequences(
                db,
                k=4,
                significance_threshold=4,
                min_unique_members=4,
                similarity_threshold=t,
                max_iterations=25,
                seed=1,
            )
            final_ts.append(result.final_log_threshold)
        assert max(final_ts) - min(final_ts) < 1e-9

    def test_outliers_stay_unclustered(self):
        ds = generate_clustered_database(
            num_sequences=150,
            num_clusters=3,
            avg_length=100,
            alphabet_size=10,
            outlier_fraction=0.10,
            seed=21,
        )
        db = ds.database
        result = cluster_sequences(
            db,
            k=3,
            significance_threshold=4,
            min_unique_members=4,
            max_iterations=25,
            seed=1,
        )
        predicted_outliers = set(result.outliers())
        true_outliers = {
            i for i in range(len(db)) if db[i].label == "__outlier__"
        }
        # Most true outliers should be left unclustered.
        assert len(true_outliers & predicted_outliers) >= len(true_outliers) // 2


class TestOverlapSupport:
    def test_assignments_may_overlap(self, small_synthetic):
        """CLUSEQ clusters are allowed to overlap; the assignment map is
        a set per sequence and memberships mirror it exactly."""
        db = small_synthetic.database
        result = cluster_sequences(
            db,
            k=4,
            significance_threshold=4,
            min_unique_members=4,
            max_iterations=15,
            seed=1,
        )
        for index, ids in result.assignments.items():
            for cluster in result.clusters:
                assert (cluster.cluster_id in ids) == cluster.contains(index)


class TestProgressTermination:
    def test_terminates_before_max_on_easy_data(self, toy_db):
        result = cluster_sequences(
            toy_db,
            k=2,
            significance_threshold=2,
            min_unique_members=3,
            max_iterations=50,
            seed=1,
        )
        assert result.iterations < 50
