"""Reusable fault injector for the durability stack.

Simulates hard crashes (power loss, SIGKILL) at durability boundaries
by counting the process's ``os.fsync`` / ``os.replace`` calls and
raising :class:`CrashPoint` *in place of* the N-th one — the write
behind that fsync never becomes durable, the rename never happens, and
no ``finally`` cleanup that itself needs the faulted call can hide the
damage. The stream/shard engines resolve both functions through the
``os`` module at call time, so patching the module attributes reaches
every journal append and checkpoint rename in the process, across
every shard of an in-process sharded engine.

Deliberately pytest-free: the chaos CI job imports this module from a
plain script, and the multi-process analogue (workers killed via
``REPRO_SHARD_CHAOS_FSYNC_AT`` — see ``repro.shard.proc``) shares its
crash-point numbering convention.

Usage::

    injector = FaultInjector(crash_at=7, kind="fsync")
    with injector.armed():
        try:
            run_workload()
        except CrashPoint:
            ...   # the simulated crash; state dir is now "as killed"
    total = count_fault_points(run_workload, kind="fsync")
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from typing import Any

__all__ = [
    "CrashPoint",
    "FaultInjector",
    "count_fault_points",
]


class CrashPoint(BaseException):
    """A simulated hard crash at a durability boundary.

    Derives from ``BaseException`` so ordinary ``except Exception``
    error handling in the code under test cannot swallow the "kill"
    and keep running past it.
    """


class FaultInjector:
    """Counts fsync/replace calls and crashes in place of the N-th.

    *crash_at* is 1-based; ``crash_at=None`` never crashes (count-only
    mode). *kind* selects the patched call: ``"fsync"`` covers every
    WAL append and the checkpoint flush, ``"replace"`` the atomic
    checkpoint/manifest/router publish.
    """

    def __init__(
        self, crash_at: "int | None" = None, kind: str = "fsync"
    ) -> None:
        if kind not in ("fsync", "replace"):
            raise ValueError(f"kind must be fsync or replace, got {kind!r}")
        if crash_at is not None and crash_at < 1:
            raise ValueError(f"crash_at is 1-based, got {crash_at}")
        self.kind = kind
        self.crash_at = crash_at
        self.calls = 0
        self._pid = os.getpid()

    def _wrap(self, real: Callable[..., Any]) -> Callable[..., Any]:
        def faulted(*args: Any, **kwargs: Any) -> Any:
            if os.getpid() != self._pid:
                # A forked worker inherited the patched function; the
                # injector only simulates crashes of the process that
                # armed it (workers get killed via REPRO_SHARD_CHAOS_*).
                return real(*args, **kwargs)
            self.calls += 1
            if self.crash_at is not None and self.calls == self.crash_at:
                raise CrashPoint(
                    f"simulated crash in place of {self.kind} "
                    f"call #{self.calls}"
                )
            return real(*args, **kwargs)

        return faulted

    @contextmanager
    def armed(self) -> Iterator["FaultInjector"]:
        """Patch ``os.<kind>`` for the duration of the block."""
        real = getattr(os, self.kind)
        setattr(os, self.kind, self._wrap(real))
        try:
            yield self
        finally:
            setattr(os, self.kind, real)


def count_fault_points(
    workload: Callable[[], Any], kind: str = "fsync"
) -> int:
    """How many *kind* calls a full run of *workload* performs.

    The chaos sweeps use this as the dry run: every integer in
    ``[1, count]`` is then a distinct crash point to inject.
    """
    injector = FaultInjector(crash_at=None, kind=kind)
    with injector.armed():
        workload()
    return injector.calls
