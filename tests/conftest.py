"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.core.pst import ProbabilisticSuffixTree
from repro.sequences.alphabet import Alphabet
from repro.sequences.database import SequenceDatabase
from repro.sequences.generators import (
    generate_clustered_database,
    generate_two_cluster_toy,
)


@pytest.fixture
def ab_alphabet():
    return Alphabet("ab")


@pytest.fixture
def abcd_alphabet():
    return Alphabet("abcd")


@pytest.fixture
def toy_db():
    """Two easily-separable character clusters (ab vs cd), 60 sequences."""
    return generate_two_cluster_toy(size_per_cluster=30, length=40, seed=7)


@pytest.fixture
def small_synthetic():
    """120 sequences, 4 embedded clusters, 5% outliers."""
    return generate_clustered_database(
        num_sequences=120,
        num_clusters=4,
        avg_length=80,
        alphabet_size=10,
        outlier_fraction=0.05,
        seed=11,
    )


@pytest.fixture
def tiny_db():
    """Four short handwritten sequences over {a, b}."""
    return SequenceDatabase.from_strings(
        ["ababab", "bababa", "aabbaa", "bbaabb"],
        labels=["x", "x", "y", "y"],
    )


@pytest.fixture
def simple_pst():
    """A PST over {a=0, b=1} trained on one alternating sequence."""
    pst = ProbabilisticSuffixTree(
        alphabet_size=2, max_depth=3, significance_threshold=2
    )
    pst.add_sequence([0, 1, 0, 1, 0, 1, 0, 1])
    return pst


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def serve_model_path(tmp_path_factory):
    """A small fitted model snapshot (with alphabet) for serve tests."""
    from repro.core.cluseq import CLUSEQ, CluseqParams
    from repro.core.persistence import save_result

    db = generate_two_cluster_toy(size_per_cluster=20, length=30, seed=5)
    params = CluseqParams(
        k=2, significance_threshold=3, similarity_threshold=1.2, seed=0
    )
    result = CLUSEQ(params).fit(db)
    path = tmp_path_factory.mktemp("serve") / "model.json"
    save_result(result, str(path), alphabet=db.alphabet)
    return str(path)
