"""Golden end-to-end regression: backend choice never changes clustering.

A seeded CLUSEQ run over synthetic two-family Markov data, checked
against the committed fixture ``tests/golden/backend_clustering.json``
— and parametrized over every backend/worker combination, all of which
must reproduce the fixture *exactly* (assignments, threshold, history
and recall). This pins two things at once:

* the clustering output itself (an algorithm regression trips it), and
* backend neutrality — the vectorized kernel and the multiprocessing
  prescore path commit bit-identical decisions to the reference loop.

Regenerate after an *intentional* algorithm change with::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_backend_golden.py -k reference-0

and commit the diff alongside the change that explains it.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

import numpy as np
import pytest

from repro.core.cluseq import CLUSEQ, CluseqParams
from repro.evaluation.metrics import evaluate_clustering
from repro.sequences.database import SequenceDatabase

GOLDEN_PATH = Path(__file__).parent / "golden" / "backend_clustering.json"

ALPHABET = "abcdefgh"
N_SEQUENCES = 80
LENGTH = 60
SEED = 20260806


def _two_family_database() -> tuple[SequenceDatabase, list[str]]:
    """Synthetic two-family first-order Markov data, fully seeded."""
    size = len(ALPHABET)

    def transition_matrix(seed: int) -> np.ndarray:
        rng = np.random.default_rng(seed)
        matrix = rng.random((size, size)) ** 6
        return matrix / matrix.sum(axis=1, keepdims=True)

    families = [transition_matrix(SEED + 1), transition_matrix(SEED + 2)]
    rng = np.random.default_rng(SEED)
    strings: list[str] = []
    labels: list[str] = []
    for i in range(N_SEQUENCES):
        family = i % 2
        chain = families[family]
        state = int(rng.integers(size))
        symbols = [state]
        for _ in range(LENGTH - 1):
            state = int(rng.choice(size, p=chain[state]))
            symbols.append(state)
        strings.append("".join(ALPHABET[s] for s in symbols))
        labels.append(f"family{family}")
    return SequenceDatabase.from_strings(strings), labels


def _run(backend: str, workers: int) -> dict[str, object]:
    db, truth = _two_family_database()
    params = CluseqParams(
        k=4,
        significance_threshold=2,
        similarity_threshold=1.2,
        max_depth=4,
        max_iterations=6,
        seed=7,
        backend=backend,
        workers=workers,
    )
    result = CLUSEQ(params).fit(db)
    report = evaluate_clustering(truth, result.labels())
    return {
        "assignments": {
            str(index): sorted(ids)
            for index, ids in sorted(result.assignments.items())
        },
        "final_log_threshold": result.final_log_threshold,
        "clusters": [
            [cluster.cluster_id, len(cluster.members)]
            for cluster in result.clusters
        ],
        "history": [
            [entry.iteration, entry.new_clusters, entry.membership_changes]
            for entry in result.history
        ],
        "macro_recall": report.macro_recall,
        "accuracy": report.accuracy,
    }


@pytest.mark.parametrize(
    ("backend", "workers"),
    [("reference", 0), ("vectorized", 0), ("vectorized", 2)],
    ids=["reference-0", "vectorized-0", "vectorized-2"],
)
def test_clustering_matches_golden_fixture(backend: str, workers: int) -> None:
    observed = _run(backend, workers)
    if os.environ.get("REGEN_GOLDEN") and backend == "reference":
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(observed, indent=2) + "\n")
    expected = json.loads(GOLDEN_PATH.read_text())
    assert observed["assignments"] == expected["assignments"]
    assert observed["clusters"] == expected["clusters"]
    assert observed["history"] == expected["history"]
    assert math.isclose(
        observed["final_log_threshold"],
        expected["final_log_threshold"],
        rel_tol=0.0,
        abs_tol=0.0,
    ), "threshold must be bit-identical across backends"
    assert observed["macro_recall"] == expected["macro_recall"]
    assert observed["accuracy"] == expected["accuracy"]


def test_fixture_represents_a_meaningful_clustering() -> None:
    """Guard against silently committing a degenerate fixture."""
    expected = json.loads(GOLDEN_PATH.read_text())
    assert expected["macro_recall"] >= 0.9
    assert len(expected["clusters"]) >= 2
