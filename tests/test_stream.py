"""Unit tests for the streaming subsystem (``repro.stream``)."""

import json

import pytest

from repro.stream import (
    STREAM_FORMAT,
    BatchRecord,
    CheckpointError,
    DecayPolicy,
    DriftingStream,
    JournalError,
    OutlierPool,
    StreamConfig,
    StreamingCluseq,
    StreamJournal,
    batched,
    checkpoint_path,
    drifting_markov_stream,
    journal_batches_after,
    journal_path,
    read_checkpoint,
    read_encoded_lines,
    read_journal,
    write_checkpoint,
)
from repro.sequences.alphabet import Alphabet, AlphabetError


# -- outlier pool -------------------------------------------------------------


class TestOutlierPool:
    def test_fifo_eviction(self):
        pool = OutlierPool(max_size=2)
        assert pool.add(1, [0, 1]) is None
        assert pool.add(2, [1, 0]) is None
        assert pool.add(3, [0, 0]) == 1
        assert pool.indices() == [2, 3]
        assert pool.evicted == 1

    def test_duplicate_index_rejected(self):
        pool = OutlierPool(max_size=4)
        pool.add(7, [0])
        with pytest.raises(ValueError, match="already pooled"):
            pool.add(7, [1])

    def test_remove_and_contains(self):
        pool = OutlierPool(max_size=4)
        pool.add(1, [0])
        assert 1 in pool
        pool.remove(1)
        assert 1 not in pool
        pool.remove(1)  # no-op
        assert len(pool) == 0

    def test_roundtrip_preserves_order_and_eviction_count(self):
        pool = OutlierPool(max_size=3)
        for i in range(5):
            pool.add(i, [i])
        clone = OutlierPool.from_list(
            pool.to_list(), pool.max_size, evicted=pool.evicted
        )
        assert clone.indices() == pool.indices()
        assert clone.evicted == pool.evicted
        assert [seq for _, seq in clone] == [seq for _, seq in pool]


# -- decay policy -------------------------------------------------------------


class TestDecayPolicy:
    def test_disabled_by_default(self):
        policy = DecayPolicy()
        assert not policy.enabled
        assert not policy.due(10)
        assert policy.half_life_batches() == float("inf")

    def test_due_fires_on_multiples_only(self):
        policy = DecayPolicy(factor=0.9, every_batches=4)
        assert [n for n in range(1, 13) if policy.due(n)] == [4, 8, 12]

    def test_validation(self):
        with pytest.raises(ValueError):
            DecayPolicy(factor=0.0, every_batches=1)
        with pytest.raises(ValueError):
            DecayPolicy(factor=1.1, every_batches=1)
        with pytest.raises(ValueError):
            DecayPolicy(factor=0.5, every_batches=1, min_count=0)

    def test_half_life(self):
        policy = DecayPolicy(factor=0.5, every_batches=3)
        assert policy.half_life_batches() == pytest.approx(3.0)

    def test_dict_roundtrip(self):
        policy = DecayPolicy(factor=0.8, every_batches=5, min_count=2)
        assert DecayPolicy.from_dict(policy.to_dict()) == policy


# -- journal ------------------------------------------------------------------


class TestJournal:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with StreamJournal(path) as journal:
            journal.append_batch(0, [[0, 1], [1, 0]])
            journal.append_batch(1, [[2, 2]])
        records = list(read_journal(path))
        assert records == [
            BatchRecord(0, [[0, 1], [1, 0]]),
            BatchRecord(1, [[2, 2]]),
        ]

    def test_header_written_once(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with StreamJournal(path) as journal:
            journal.append_batch(0, [[0]])
        with StreamJournal(path) as journal:
            journal.append_batch(1, [[1]])
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["type"] == "header"
        assert sum(1 for ln in lines if json.loads(ln)["type"] == "header") == 1

    def test_torn_final_line_is_ignored(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with StreamJournal(path) as journal:
            journal.append_batch(0, [[0, 1]])
            journal.append_batch(1, [[1, 1]])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "batch", "n": 2, "sequen')  # torn append
        records = list(read_journal(path))
        assert [r.ordinal for r in records] == [0, 1]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with StreamJournal(path) as journal:
            journal.append_batch(0, [[0]])
        text = path.read_text().splitlines()
        text.insert(1, "garbage{{{")
        path.write_text("\n".join(text) + "\n")
        with pytest.raises(JournalError, match="corrupt"):
            list(read_journal(path))

    def test_wrong_header_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"type": "header", "format": "other/v9"}\n')
        with pytest.raises(JournalError, match="not a"):
            list(read_journal(path))

    def test_batches_after_filters_by_ordinal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with StreamJournal(path) as journal:
            for n in range(5):
                journal.append_batch(n, [[n]])
        suffix = journal_batches_after(path, after=3)
        assert [r.ordinal for r in suffix] == [3, 4]


# -- checkpoint ---------------------------------------------------------------


class TestCheckpoint:
    def test_roundtrip_and_format_tag(self, tmp_path):
        path = checkpoint_path(tmp_path)
        size = write_checkpoint(path, {"journal_batches": 3, "x": [1, 2]})
        assert size > 0
        payload = read_checkpoint(path)
        assert payload["format"] == STREAM_FORMAT
        assert payload["journal_batches"] == 3
        assert payload["x"] == [1, 2]

    def test_missing_journal_batches_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="journal_batches"):
            write_checkpoint(checkpoint_path(tmp_path), {"x": 1})

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            read_checkpoint(checkpoint_path(tmp_path))

    def test_corrupt_file_raises(self, tmp_path):
        path = checkpoint_path(tmp_path)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{truncated")
        with pytest.raises(CheckpointError, match="corrupt"):
            read_checkpoint(path)

    def test_unknown_format_rejected(self, tmp_path):
        path = checkpoint_path(tmp_path)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"format": "other/v2", "journal_batches": 0}, handle)
        with pytest.raises(CheckpointError, match="unsupported"):
            read_checkpoint(path)

    def test_write_is_atomic_no_tmp_left_behind(self, tmp_path):
        path = checkpoint_path(tmp_path)
        write_checkpoint(path, {"journal_batches": 0})
        write_checkpoint(path, {"journal_batches": 1})
        leftovers = [p.name for p in tmp_path.iterdir()]
        assert leftovers == ["checkpoint.json"]
        assert read_checkpoint(path)["journal_batches"] == 1


# -- sources ------------------------------------------------------------------


class TestSources:
    def test_batched_chunks_with_ragged_tail(self):
        chunks = list(batched(([i] for i in range(7)), 3))
        assert chunks == [[[0], [1], [2]], [[3], [4], [5]], [[6]]]

    def test_batched_rejects_bad_size(self):
        with pytest.raises(ValueError):
            list(batched([], 0))

    def test_read_encoded_lines_skips_unknown_and_labels(self):
        alphabet = Alphabet("ab")
        lines = ["ab\n", "lbl\tba\n", "", "azb\n", "bb"]
        assert list(read_encoded_lines(lines, alphabet)) == [
            [0, 1],
            [1, 0],
            [1, 1],
        ]

    def test_read_encoded_lines_error_mode(self):
        alphabet = Alphabet("ab")
        with pytest.raises(AlphabetError):
            list(read_encoded_lines(["az\n"], alphabet, on_unknown="error"))

    def test_drifting_stream_is_deterministic(self):
        a = drifting_markov_stream(50, 25, alphabet_size=4, seed=9)
        b = drifting_markov_stream(50, 25, alphabet_size=4, seed=9)
        assert isinstance(a, DriftingStream)
        assert a.sequences == b.sequences
        assert len(a) == 50
        assert a.drift_at == 25
        assert all(
            0 <= s < 4 for seq in a.sequences for s in seq
        )

    def test_drifting_stream_validation(self):
        with pytest.raises(ValueError):
            drifting_markov_stream(10, 0)
        with pytest.raises(ValueError):
            drifting_markov_stream(10, 11)


# -- engine -------------------------------------------------------------------


def quick_config(**kwargs):
    kwargs.setdefault("batch_size", 10)
    kwargs.setdefault("pool_size", 64)
    kwargs.setdefault("reseed_every", 2)
    kwargs.setdefault("reseed_k", 2)
    kwargs.setdefault("reseed_min_pool", 5)
    kwargs.setdefault("consolidate_every", 8)
    kwargs.setdefault("seed", 3)
    return StreamConfig(**kwargs)


class TestStreamConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            StreamConfig(batch_size=0)
        with pytest.raises(ValueError):
            StreamConfig(reseed_every=-1)
        with pytest.raises(ValueError):
            StreamConfig(valley_method="nonsense")

    def test_dict_roundtrip(self):
        config = quick_config(
            decay=DecayPolicy(factor=0.9, every_batches=4), adjust_every=6
        )
        assert StreamConfig.from_dict(config.to_dict()) == config


class TestStreamingEngine:
    def test_cold_start_requires_alphabet_info(self):
        with pytest.raises(ValueError, match="alphabet"):
            StreamingCluseq.cold_start()

    def test_cold_start_clusters_a_clean_stream(self):
        stream = drifting_markov_stream(
            200, 100, alphabet_size=8, concentration=0.05, seed=7
        )
        engine = StreamingCluseq.cold_start(
            alphabet_size=8,
            similarity_threshold=10.0,
            significance_threshold=3,
            max_depth=4,
            config=quick_config(),
        )
        stats = engine.run(stream.sequences)
        assert stats.sequences == 200
        assert stats.clusters >= 2
        assert stats.absorbed + stats.outliers == stats.sequences
        assert 0.0 <= stats.absorb_rate <= 1.0

    def test_new_cluster_spawns_after_drift(self):
        stream = drifting_markov_stream(
            300, 150, alphabet_size=8, concentration=0.05, seed=7
        )
        config = quick_config(batch_size=25)
        engine = StreamingCluseq.cold_start(
            alphabet_size=8,
            similarity_threshold=10.0,
            significance_threshold=3,
            max_depth=4,
            config=config,
        )
        engine.run(stream.sequences)
        drift_batch = stream.drift_at // config.batch_size
        spawned_late = [
            c
            for c in engine.result.clusters
            if c.created_at_iteration > drift_batch
        ]
        assert spawned_late, "no cluster created after the drift point"

    def test_assignments_cover_every_sequence(self):
        stream = drifting_markov_stream(120, 60, alphabet_size=6, seed=5)
        engine = StreamingCluseq.cold_start(
            alphabet_size=6,
            similarity_threshold=5.0,
            significance_threshold=3,
            max_depth=4,
            config=quick_config(),
        )
        engine.run(stream.sequences)
        assert sorted(engine.result.assignments) == list(range(120))
        live = {c.cluster_id for c in engine.result.clusters}
        for ids in engine.result.assignments.values():
            assert ids <= live

    def test_flush_processes_partial_batch(self):
        engine = StreamingCluseq.cold_start(
            alphabet_size=4, config=quick_config(batch_size=50)
        )
        for seq in ([0, 1, 2, 3] for _ in range(7)):
            engine.ingest(seq)
        assert engine.sequences_ingested == 0
        engine.flush()
        assert engine.sequences_ingested == 7
        assert engine.batches_ingested == 1

    def test_empty_sequences_are_dropped(self):
        engine = StreamingCluseq.cold_start(
            alphabet_size=4, config=quick_config()
        )
        assert engine.ingest_batch([[], [0, 1], []]) == [None]
        assert engine.sequences_ingested == 1

    def test_decay_runs_on_schedule(self):
        stream = drifting_markov_stream(150, 75, alphabet_size=6, seed=2)
        engine = StreamingCluseq.cold_start(
            alphabet_size=6,
            similarity_threshold=5.0,
            significance_threshold=3,
            max_depth=4,
            config=quick_config(
                batch_size=15, decay=DecayPolicy(factor=0.8, every_batches=3)
            ),
        )
        stats = engine.run(stream.sequences)
        assert stats.batches == 10
        assert stats.decay_events == 3  # batches 3, 6, 9

    def test_checkpoint_requires_state_dir(self):
        engine = StreamingCluseq.cold_start(
            alphabet_size=4, config=quick_config()
        )
        with pytest.raises(RuntimeError, match="state_dir"):
            engine.checkpoint()

    def test_durable_engine_writes_initial_checkpoint(self, tmp_path):
        state_dir = tmp_path / "state"
        engine = StreamingCluseq.cold_start(
            alphabet_size=4, config=quick_config(), state_dir=state_dir
        )
        engine.close()
        payload = read_checkpoint(checkpoint_path(state_dir))
        assert payload["journal_batches"] == 0

    def test_journal_records_every_batch(self, tmp_path):
        state_dir = tmp_path / "state"
        stream = drifting_markov_stream(40, 20, alphabet_size=4, seed=1)
        engine = StreamingCluseq.cold_start(
            alphabet_size=4,
            config=quick_config(batch_size=10),
            state_dir=state_dir,
        )
        with engine:
            engine.run(stream.sequences)
        records = list(read_journal(journal_path(state_dir)))
        assert [r.ordinal for r in records] == [0, 1, 2, 3]
        replayed = [seq for r in records for seq in r.sequences]
        assert replayed == stream.sequences
