"""Tests for repro.baselines.qgram."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.qgram import (
    QGramClusterer,
    cosine_similarity,
    qgram_profile,
    spherical_kmeans,
)
from repro.sequences.database import SequenceDatabase


class TestProfile:
    def test_basic_trigram(self):
        profile = qgram_profile([0, 1, 0, 1], 3)
        assert set(profile) == {(0, 1, 0), (1, 0, 1)}
        assert sum(profile.values()) == pytest.approx(1.0)

    def test_q1_is_unigram_frequency(self):
        profile = qgram_profile([0, 0, 1], 1)
        assert profile[(0,)] == pytest.approx(2 / 3)
        assert profile[(1,)] == pytest.approx(1 / 3)

    def test_short_sequence_fallback(self):
        profile = qgram_profile([0, 1], 5)
        assert profile == {(0, 1): 1.0}

    def test_validation(self):
        with pytest.raises(ValueError):
            qgram_profile([0, 1], 0)
        with pytest.raises(ValueError):
            qgram_profile([], 2)


class TestCosine:
    def test_identical_profiles(self):
        p = qgram_profile([0, 1, 0, 1, 0], 2)
        assert cosine_similarity(p, p) == pytest.approx(1.0)

    def test_disjoint_profiles(self):
        a = qgram_profile([0, 0, 0], 2)
        b = qgram_profile([1, 1, 1], 2)
        assert cosine_similarity(a, b) == 0.0

    def test_symmetric(self):
        a = qgram_profile([0, 1, 1, 0], 2)
        b = qgram_profile([1, 0, 0, 1], 2)
        assert cosine_similarity(a, b) == pytest.approx(cosine_similarity(b, a))

    def test_empty_profile(self):
        assert cosine_similarity({}, {(0,): 1.0}) == 0.0

    def test_range(self):
        a = qgram_profile([0, 1, 2, 0, 1], 2)
        b = qgram_profile([2, 1, 0, 2, 1], 2)
        assert 0.0 <= cosine_similarity(a, b) <= 1.0


class TestSphericalKMeans:
    def test_separates_profiles(self):
        profiles = [
            qgram_profile([0, 1] * 10, 2),
            qgram_profile([1, 0] * 10 + [0], 2),
            qgram_profile([2, 3] * 10, 2),
            qgram_profile([3, 2] * 10 + [2], 2),
        ]
        labels = spherical_kmeans(profiles, 2, seed=0)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_validation(self):
        with pytest.raises(ValueError):
            spherical_kmeans([{(0,): 1.0}], 2)

    def test_single_cluster(self):
        profiles = [qgram_profile([0, 1, 0], 2) for _ in range(4)]
        assert set(spherical_kmeans(profiles, 1, seed=0)) == {0}

    def test_deterministic(self):
        profiles = [qgram_profile([i % 3, (i + 1) % 3] * 5, 2) for i in range(9)]
        assert spherical_kmeans(profiles, 3, seed=5) == spherical_kmeans(
            profiles, 3, seed=5
        )


class TestClusterer:
    def test_clusters_by_composition(self):
        db = SequenceDatabase.from_strings(
            ["ababab", "bababa", "cdcdcd", "dcdcdc"]
        )
        result = QGramClusterer(q=2, seed=0).fit_predict(db, 2)
        assert result.labels[0] == result.labels[1]
        assert result.labels[2] == result.labels[3]
        assert result.labels[0] != result.labels[2]
        assert result.model_name == "q-gram"

    def test_q_validation(self):
        with pytest.raises(ValueError):
            QGramClusterer(q=0)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 3), min_size=1, max_size=30), st.integers(1, 4))
def test_profile_is_distribution(seq, q):
    profile = qgram_profile(seq, q)
    assert sum(profile.values()) == pytest.approx(1.0)
    assert all(v > 0 for v in profile.values())
    assert all(len(g) == min(q, len(seq)) for g in profile)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(0, 3), min_size=1, max_size=30),
    st.lists(st.integers(0, 3), min_size=1, max_size=30),
)
def test_cosine_bounds_property(a, b):
    pa, pb = qgram_profile(a, 2), qgram_profile(b, 2)
    value = cosine_similarity(pa, pb)
    assert -1e-9 <= value <= 1.0 + 1e-9
