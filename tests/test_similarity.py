"""Tests for repro.core.similarity — the CLUSEQ similarity measure."""

import math

import numpy as np
import pytest

from repro.core.pst import ProbabilisticSuffixTree
from repro.core.similarity import (
    SimilarityResult,
    log_symbol_ratios,
    segment_definition_similarity,
    similarity,
    similarity_bruteforce,
    whole_sequence_similarity,
)


@pytest.fixture
def uniform_bg():
    return np.array([0.5, 0.5])


@pytest.fixture
def alternating_pst():
    pst = ProbabilisticSuffixTree(
        alphabet_size=2, max_depth=3, significance_threshold=2, p_min=1e-3
    )
    pst.add_sequence([0, 1] * 15)
    return pst


class TestValidation:
    def test_empty_sequence_rejected(self, alternating_pst, uniform_bg):
        with pytest.raises(ValueError, match="empty"):
            similarity(alternating_pst, [], uniform_bg)

    def test_wrong_background_shape(self, alternating_pst):
        with pytest.raises(ValueError, match="background"):
            similarity(alternating_pst, [0, 1], np.array([0.3, 0.3, 0.4]))

    def test_bruteforce_empty_rejected(self, alternating_pst, uniform_bg):
        with pytest.raises(ValueError):
            similarity_bruteforce(alternating_pst, [], uniform_bg)


class TestPaperTable1:
    """Reproduce the structure of the paper's Table 1 walkthrough:
    X, Y, Z recurrences over a 4-symbol sequence."""

    def test_recurrence_by_hand(self):
        # Build a tree whose probabilities we control exactly, then
        # verify the DP against hand-computed X/Y/Z.
        pst = ProbabilisticSuffixTree(
            alphabet_size=2, max_depth=2, significance_threshold=1
        )
        pst.add_sequence([1, 1, 0, 0, 1, 0, 1, 1, 0])
        bg = np.array([0.6, 0.4])
        seq = [1, 1, 0, 0]
        ratios = log_symbol_ratios(pst, seq, bg)
        # Manual DP.
        y = ratios[0]
        z = y
        for x in ratios[1:]:
            y = max(y + x, x)
            z = max(z, y)
        result = similarity(pst, seq, bg)
        assert result.log_similarity == pytest.approx(z)

    def test_similarity_above_one_for_model_sequence(
        self, alternating_pst, uniform_bg
    ):
        result = similarity(alternating_pst, [0, 1] * 5, uniform_bg)
        assert result.similarity > 1.0
        assert result.log_similarity > 0.0

    def test_whole_sequence_vs_best_segment(self, alternating_pst, uniform_bg):
        # For a partially matching sequence, the best segment beats the
        # whole-sequence score.
        seq = [0, 0, 0, 0, 1, 0, 1, 0, 1, 0, 0, 0]
        result = similarity(alternating_pst, seq, uniform_bg)
        assert result.log_similarity >= result.whole_sequence_log

    def test_whole_sequence_similarity_function(
        self, alternating_pst, uniform_bg
    ):
        seq = [0, 1, 0, 1]
        expected = similarity(alternating_pst, seq, uniform_bg).whole_sequence_log
        assert whole_sequence_similarity(
            alternating_pst, seq, uniform_bg
        ) == pytest.approx(math.exp(expected))


class TestBestSegment:
    def test_best_segment_is_matching_region(self, alternating_pst, uniform_bg):
        # Matching island in the middle of anti-model symbols.
        seq = [0, 0, 0] + [0, 1] * 6 + [1, 1, 1]
        result = similarity(alternating_pst, seq, uniform_bg)
        start, end = result.best_start, result.best_end
        island = seq[start:end]
        # The chosen segment overlaps the alternating region substantially.
        alternations = sum(
            1 for i in range(len(island) - 1) if island[i] != island[i + 1]
        )
        assert alternations >= len(island) - 2
        assert result.best_segment_length >= 6

    def test_segment_bounds_valid(self, alternating_pst, uniform_bg):
        seq = [1, 0, 0, 1, 1, 0]
        result = similarity(alternating_pst, seq, uniform_bg)
        assert 0 <= result.best_start < result.best_end <= len(seq)

    def test_single_symbol_sequence(self, alternating_pst, uniform_bg):
        result = similarity(alternating_pst, [0], uniform_bg)
        assert (result.best_start, result.best_end) == (0, 1)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_bruteforce_random(self, seed, alternating_pst, uniform_bg):
        rng = np.random.default_rng(seed)
        seq = list(rng.integers(0, 2, size=25))
        result = similarity(alternating_pst, seq, uniform_bg)
        brute, brute_range = similarity_bruteforce(
            alternating_pst, seq, uniform_bg
        )
        assert result.log_similarity == pytest.approx(brute)
        brute_sum = sum(
            log_symbol_ratios(alternating_pst, seq, uniform_bg)[
                brute_range[0] : brute_range[1]
            ]
        )
        assert brute_sum == pytest.approx(brute)

    def test_nonuniform_background(self, alternating_pst):
        bg = np.array([0.9, 0.1])
        seq = [0, 1, 1, 0, 1, 0, 1]
        result = similarity(alternating_pst, seq, bg)
        brute, _ = similarity_bruteforce(alternating_pst, seq, bg)
        assert result.log_similarity == pytest.approx(brute)


class TestNumericalSafety:
    def test_long_sequence_no_overflow(self, uniform_bg):
        pst = ProbabilisticSuffixTree(
            alphabet_size=2, max_depth=3, significance_threshold=2, p_min=1e-3
        )
        pst.add_sequence([0, 1] * 500)
        result = similarity(pst, [0, 1] * 500, uniform_bg)
        assert math.isfinite(result.log_similarity)
        assert result.similarity > 1e200  # enormous but never an exception

    def test_exp_saturates_to_inf(self, uniform_bg):
        pst = ProbabilisticSuffixTree(
            alphabet_size=2, max_depth=3, significance_threshold=2, p_min=1e-3
        )
        pst.add_sequence([0, 1] * 800)
        result = similarity(pst, [0, 1] * 800, uniform_bg)
        assert math.isfinite(result.log_similarity)
        assert result.similarity == math.inf  # exp(>709) clamps to inf

    def test_zero_probability_without_smoothing(self, uniform_bg):
        pst = ProbabilisticSuffixTree(
            alphabet_size=2, max_depth=2, significance_threshold=1, p_min=0.0
        )
        pst.add_sequence([0, 0, 0, 0, 0])
        result = similarity(pst, [0, 1], uniform_bg)
        assert math.isfinite(result.log_similarity)
        # Whole-sequence score collapses due to the unseen symbol.
        assert result.whole_sequence_log < -300

    def test_exceeds_threshold_helper(self):
        result = SimilarityResult(
            similarity=math.inf,
            log_similarity=10.0,
            best_start=0,
            best_end=1,
            whole_sequence_log=10.0,
        )
        assert result.exceeds(1.0)
        assert result.exceeds(math.exp(9.9))
        assert not result.exceeds(math.exp(10.1))
        assert result.exceeds(0.0)


class TestSegmentDefinition:
    def test_at_least_best_single_position(self, alternating_pst, uniform_bg):
        seq = [0, 1, 0, 1, 1]
        value = segment_definition_similarity(alternating_pst, seq, uniform_bg)
        # Literal Eq. 1 scores segment [i,i+1) with the *root* context,
        # so compare against the root-context single-symbol scores.
        singles = [
            similarity(alternating_pst, [s], uniform_bg).whole_sequence_log
            for s in seq
        ]
        assert value >= max(singles) - 1e-9

    def test_empty_rejected(self, alternating_pst, uniform_bg):
        with pytest.raises(ValueError):
            segment_definition_similarity(alternating_pst, [], uniform_bg)
