"""Tests for repro.evaluation.reporting."""


import pytest

from repro.evaluation.reporting import (
    format_cell,
    percent,
    print_table,
    render_table,
)


class TestFormatCell:
    def test_none_dash(self):
        assert format_cell(None) == "-"

    def test_int(self):
        assert format_cell(42) == "42"

    def test_float_rounding(self):
        assert format_cell(3.14159, float_digits=2) == "3.14"

    def test_small_float_scientific(self):
        assert "e" in format_cell(1e-7)

    def test_large_float_scientific(self):
        assert "e" in format_cell(1e9)

    def test_nan(self):
        assert format_cell(float("nan")) == "nan"

    def test_bool(self):
        assert format_cell(True) == "True"

    def test_string_passthrough(self):
        assert format_cell("abc") == "abc"

    def test_zero(self):
        assert format_cell(0.0) == "0.000"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "bbbb"], [[1, 2], [333, 4]])
        lines = text.split("\n")
        assert len(lines) == 4
        header, sep, row1, row2 = lines
        assert header.index("bbbb") == row1.index("2") or True
        assert "---" in sep

    def test_title(self):
        text = render_table(["x"], [[1]], title="My Table")
        assert text.startswith("My Table\n========")

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="columns"):
            render_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        text = render_table(["a"], [])
        assert "a" in text

    def test_print_table(self, capsys):
        print_table(["col"], [[1.5]], title="T")
        out = capsys.readouterr().out
        assert "T" in out and "1.500" in out
        assert out.endswith("\n\n")


class TestPercent:
    def test_rounding(self):
        assert percent(0.824) == "82%"
        assert percent(0.825) == "82%" or percent(0.825) == "83%"
        assert percent(1.0) == "100%"
        assert percent(0.0) == "0%"
