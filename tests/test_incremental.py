"""Tests for incremental assignment (streaming deployment)."""

import pytest

from repro.core.cluseq import cluster_sequences


@pytest.fixture
def fitted_toy(toy_db):
    return cluster_sequences(
        toy_db,
        k=2,
        significance_threshold=2,
        min_unique_members=3,
        max_iterations=10,
        seed=1,
    )


class TestAssignAndAbsorb:
    def test_member_like_sequence_joins(self, toy_db, fitted_toy):
        encoded = toy_db.alphabet.encode("abababababababab")
        before = len(fitted_toy.assignments)
        assigned = fitted_toy.assign_and_absorb(encoded)
        assert assigned is not None
        cluster = fitted_toy.cluster_by_id(assigned)
        new_index = before  # appended at the next free index
        assert cluster.contains(new_index)
        assert fitted_toy.assignments[new_index] == {assigned}

    def test_absorption_grows_model(self, toy_db, fitted_toy):
        encoded = toy_db.alphabet.encode("abababababababab")
        assigned = fitted_toy.assign_and_absorb(encoded)
        cluster = fitted_toy.cluster_by_id(assigned)
        symbols_before = cluster.pst.total_symbols
        fitted_toy.assign_and_absorb(encoded)
        assert cluster.pst.total_symbols > symbols_before

    def test_outlier_recorded(self, toy_db, fitted_toy):
        # A sequence unlike either cluster: rare symbols alternating in
        # an unseen pattern.
        encoded = toy_db.alphabet.encode("acacacacacacacac")
        before = len(fitted_toy.assignments)
        assigned = fitted_toy.assign_and_absorb(encoded)
        if assigned is None:  # expected on most seeds
            assert fitted_toy.assignments[before] == set()

    def test_indices_monotone(self, toy_db, fitted_toy):
        first = len(fitted_toy.assignments)
        fitted_toy.assign_and_absorb(toy_db.encoded(0))
        fitted_toy.assign_and_absorb(toy_db.encoded(1))
        assert set(fitted_toy.assignments) >= {first, first + 1}

    def test_empty_rejected(self, fitted_toy):
        with pytest.raises(ValueError):
            fitted_toy.assign_and_absorb([])

    def test_existing_memberships_untouched(self, toy_db, fitted_toy):
        snapshot = {
            cl.cluster_id: cl.members for cl in fitted_toy.clusters
        }
        new_index = len(fitted_toy.assignments)
        fitted_toy.assign_and_absorb(toy_db.encoded(0))
        for cluster in fitted_toy.clusters:
            extra = cluster.members - snapshot[cluster.cluster_id]
            assert extra <= {new_index}

    def test_consistent_with_predict(self, toy_db, fitted_toy):
        encoded = toy_db.alphabet.encode("babababababababa")
        predicted = fitted_toy.predict(encoded)
        assigned = fitted_toy.assign_and_absorb(encoded)
        assert assigned == predicted
