"""Tests for repro.datasets (protein families and languages)."""

from collections import Counter

import pytest

from repro.datasets.languages import (
    LANGUAGE_INVENTORIES,
    NOISE_INVENTORIES,
    make_language_database,
    make_sentence,
)
from repro.datasets.protein import (
    PAPER_FAMILY_SIZES,
    family_names,
    make_family_specs,
    make_protein_database,
)
from repro.sequences.alphabet import AMINO_ACIDS
from repro.sequences.database import OUTLIER_LABEL


class TestProteinSpecs:
    def test_paper_names_used_first(self):
        specs = make_family_specs(num_families=10, scale=0.05, seed=0)
        names = [s.name for s in specs]
        assert names == [name for name, _ in PAPER_FAMILY_SIZES]

    def test_sizes_follow_paper_distribution(self):
        specs = make_family_specs(num_families=10, scale=0.1, seed=0)
        sizes = [s.size for s in specs]
        paper = [size for _, size in PAPER_FAMILY_SIZES]
        # Relative ordering preserved.
        assert sizes == sorted(sizes, reverse=True) or all(
            (a > b) == (pa > pb)
            for (a, b, pa, pb) in zip(sizes, sizes[1:], paper, paper[1:])
        )

    def test_extra_families_generated(self):
        specs = make_family_specs(num_families=15, scale=0.05, seed=0)
        assert len(specs) == 15
        assert specs[12].name.startswith("family")

    def test_motifs_are_amino_acids(self):
        for spec in make_family_specs(num_families=5, seed=1):
            assert 1 <= len(spec.motifs) <= 3
            for motif in spec.motifs:
                assert 8 <= len(motif) <= 15
                assert all(aa in AMINO_ACIDS for aa in motif)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_family_specs(num_families=0)
        with pytest.raises(ValueError):
            make_family_specs(num_families=3, scale=0.0)


class TestProteinDatabase:
    def test_structure(self):
        db = make_protein_database(num_families=5, scale=0.05, seed=0)
        assert db.alphabet.size == 20
        assert len(db.distinct_labels()) == 5
        assert all(set(r.symbols) <= set(AMINO_ACIDS) for r in db)

    def test_motifs_embedded_in_every_member(self):
        """Every member of a family contains at least one of its motifs
        (insertion may overlap another motif, so require any-of)."""
        from repro.datasets.protein import make_family_specs

        db = make_protein_database(num_families=3, scale=0.05, seed=7)
        specs = {s.name: s for s in make_family_specs(3, 0.05, 120, 7)}
        hits = 0
        total = 0
        for record in db:
            total += 1
            text = record.as_string()
            if any(motif in text for motif in specs[record.label].motifs):
                hits += 1
        assert hits / total > 0.9

    def test_outlier_fraction(self):
        db = make_protein_database(
            num_families=3, scale=0.05, outlier_fraction=0.2, seed=0
        )
        counts = Counter(db.labels)
        assert counts[OUTLIER_LABEL] == pytest.approx(0.2 * len(db), abs=2)

    def test_invalid_outlier_fraction(self):
        with pytest.raises(ValueError):
            make_protein_database(outlier_fraction=1.0)

    def test_reproducible(self):
        a = make_protein_database(num_families=3, scale=0.03, seed=5)
        b = make_protein_database(num_families=3, scale=0.03, seed=5)
        assert [r.symbols for r in a] == [r.symbols for r in b]

    def test_family_names_largest_first(self):
        db = make_protein_database(num_families=4, scale=0.05, seed=0)
        names = family_names(db)
        counts = Counter(r.label for r in db)
        sizes = [counts[n] for n in names]
        assert sizes == sorted(sizes, reverse=True)


class TestSentences:
    def test_lowercase_only(self, rng):
        for inventory in LANGUAGE_INVENTORIES.values():
            sentence = make_sentence(inventory, rng)
            assert sentence.islower()
            assert " " not in sentence
            assert all("a" <= ch <= "z" for ch in sentence)

    def test_length_bounds(self, rng):
        for _ in range(20):
            sentence = make_sentence(
                LANGUAGE_INVENTORIES["english"], rng, min_chars=30, max_chars=50
            )
            assert 30 <= len(sentence) <= 50

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            make_sentence([], rng)
        with pytest.raises(ValueError):
            make_sentence(["abc"], rng, min_chars=10, max_chars=5)

    def test_english_digraph_statistics(self, rng):
        """The paper's English diagnostic: 'th' and 'he' should be far
        more frequent in English than in romaji Japanese."""
        english = "".join(
            make_sentence(LANGUAGE_INVENTORIES["english"], rng)
            for _ in range(50)
        )
        japanese = "".join(
            make_sentence(LANGUAGE_INVENTORIES["japanese"], rng)
            for _ in range(50)
        )
        th_en = english.count("th") / len(english)
        th_ja = japanese.count("th") / len(japanese)
        assert th_en > 5 * max(th_ja, 1e-9)

    def test_japanese_cv_alternation(self, rng):
        """The paper's Japanese diagnostic: consonant-vowel alternation
        means few consonant pairs."""
        vowels = set("aeiou")
        japanese = "".join(
            make_sentence(LANGUAGE_INVENTORIES["japanese"], rng)
            for _ in range(30)
        )
        double_consonants = sum(
            1
            for x, y in zip(japanese, japanese[1:])
            if x not in vowels and y not in vowels
        )
        english = "".join(
            make_sentence(LANGUAGE_INVENTORIES["english"], rng)
            for _ in range(30)
        )
        double_en = sum(
            1
            for x, y in zip(english, english[1:])
            if x not in vowels and y not in vowels
        )
        assert double_consonants / len(japanese) < double_en / len(english)


class TestLanguageDatabase:
    def test_structure(self):
        db = make_language_database(
            sentences_per_language=10, noise_sentences=4, seed=1
        )
        counts = Counter(db.labels)
        assert counts["english"] == 10
        assert counts["chinese"] == 10
        assert counts["japanese"] == 10
        assert counts[OUTLIER_LABEL] == 4
        assert db.alphabet.size == 26

    def test_no_noise(self):
        db = make_language_database(sentences_per_language=5, noise_sentences=0)
        assert OUTLIER_LABEL not in db.labels

    def test_validation(self):
        with pytest.raises(ValueError):
            make_language_database(sentences_per_language=0)
        with pytest.raises(ValueError):
            make_language_database(noise_sentences=-1)

    def test_noise_inventories_exist(self):
        assert set(NOISE_INVENTORIES) == {"russian", "german"}
