"""Tests for repro.sequences.generators."""

from collections import Counter

import pytest

from repro.sequences.database import OUTLIER_LABEL
from repro.sequences.generators import (
    SyntheticSpec,
    generate_clustered_database,
    inject_outliers,
)


class TestSyntheticSpec:
    def test_defaults_valid(self):
        SyntheticSpec()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_sequences", 0),
            ("num_clusters", 0),
            ("avg_length", 1),
            ("alphabet_size", 1),
            ("outlier_fraction", 1.0),
            ("outlier_fraction", -0.1),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            SyntheticSpec(**{field: value})


class TestGenerateClusteredDatabase:
    def test_counts_and_labels(self):
        ds = generate_clustered_database(
            num_sequences=60, num_clusters=3, avg_length=30,
            alphabet_size=6, outlier_fraction=0.1, seed=4,
        )
        db = ds.database
        assert len(db) == 60
        counts = Counter(db.labels)
        assert counts[OUTLIER_LABEL] == 6
        clustered = {k: v for k, v in counts.items() if k != OUTLIER_LABEL}
        assert set(clustered) == {"cluster0", "cluster1", "cluster2"}
        assert sum(clustered.values()) == 54
        # balanced within ±1
        assert max(clustered.values()) - min(clustered.values()) <= 1

    def test_sources_returned(self):
        ds = generate_clustered_database(num_sequences=20, num_clusters=2,
                                         avg_length=20, alphabet_size=4, seed=1)
        assert len(ds.sources) == 2
        assert ds.cluster_labels == ["cluster0", "cluster1"]

    def test_reproducible(self):
        a = generate_clustered_database(num_sequences=20, num_clusters=2,
                                        avg_length=20, alphabet_size=4, seed=9)
        b = generate_clustered_database(num_sequences=20, num_clusters=2,
                                        avg_length=20, alphabet_size=4, seed=9)
        assert [r.symbols for r in a.database] == [r.symbols for r in b.database]

    def test_different_seed_differs(self):
        a = generate_clustered_database(num_sequences=20, num_clusters=2,
                                        avg_length=20, alphabet_size=4, seed=1)
        b = generate_clustered_database(num_sequences=20, num_clusters=2,
                                        avg_length=20, alphabet_size=4, seed=2)
        assert [r.symbols for r in a.database] != [r.symbols for r in b.database]

    def test_spec_and_overrides_mutually_exclusive(self):
        with pytest.raises(TypeError):
            generate_clustered_database(SyntheticSpec(), num_clusters=3)

    def test_too_many_clusters_rejected(self):
        with pytest.raises(ValueError, match="cannot embed"):
            generate_clustered_database(num_sequences=5, num_clusters=10,
                                        avg_length=10, alphabet_size=4)


class TestToy:
    def test_shape(self, toy_db):
        assert len(toy_db) == 60
        assert toy_db.alphabet.symbols == ("a", "b", "c", "d")
        assert Counter(toy_db.labels) == {"ab": 30, "cd": 30}

    def test_cluster_character(self, toy_db):
        """ab-cluster sequences should be dominated by a/b symbols."""
        for record in toy_db:
            counts = Counter(record.symbols)
            ab_mass = counts["a"] + counts["b"]
            if record.label == "ab":
                assert ab_mass > len(record) / 2
            else:
                assert ab_mass < len(record) / 2


class TestInjectOutliers:
    def test_fraction_of_result(self, toy_db):
        out = inject_outliers(toy_db, 0.2, seed=3)
        counts = Counter(out.labels)
        assert counts[OUTLIER_LABEL] == 15  # 15 / 75 = 20%
        assert len(out) == 75

    def test_zero_fraction_copies(self, toy_db):
        out = inject_outliers(toy_db, 0.0)
        assert len(out) == len(toy_db)

    def test_invalid_fraction(self, toy_db):
        with pytest.raises(ValueError):
            inject_outliers(toy_db, 1.0)

    def test_original_untouched(self, toy_db):
        before = len(toy_db)
        inject_outliers(toy_db, 0.1)
        assert len(toy_db) == before
