"""The serving application: endpoints, batching, backpressure, hot swap.

The acceptance contract from the serving design: concurrent classify
requests coalesce (batch occupancy > 1), queue overflow answers 503
with ``Retry-After``, and a reload mid-flight never drops or tears a
response.
"""

import asyncio
import json

import pytest

from repro.core.persistence import save_result
from repro.obs import MetricsRegistry, use_registry
from repro.serve import ModelRegistry, ServeApp, http_call
from repro.sequences.generators import generate_two_cluster_toy


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def query_strings():
    db = generate_two_cluster_toy(size_per_cluster=8, length=30, seed=42)
    return ["".join(record.symbols) for record in db]


def make_app(serve_model_path, **kwargs):
    registry = ModelRegistry()
    registry.load(kwargs.pop("model_name", "default"), serve_model_path)
    return ServeApp(registry, **kwargs)


class TestClassify:
    def test_batches_coalesce(self, serve_model_path, query_strings):
        async def scenario():
            app = make_app(
                serve_model_path, max_batch=64, max_delay=0.02, max_queue=64
            )
            host, port = await app.start()
            try:
                responses = await asyncio.gather(
                    *(
                        http_call(
                            host, port, "POST", "/v1/classify", {"sequence": s}
                        )
                        for s in query_strings
                    )
                )
            finally:
                await app.close()
            return responses, app.batcher.stats

        responses, stats = run(scenario())
        assert all(r.status == 200 for r in responses)
        assert stats.requests == len(responses)
        # The whole point of the dispatcher: more than one request per kernel.
        assert stats.mean_occupancy > 1

    def test_multi_sequence_request_and_unencodable(
        self, serve_model_path, query_strings
    ):
        async def scenario():
            app = make_app(serve_model_path)
            host, port = await app.start()
            try:
                return await http_call(
                    host,
                    port,
                    "POST",
                    "/v1/classify",
                    {"sequences": [query_strings[0], "§§§", query_strings[1]]},
                )
            finally:
                await app.close()

        response = run(scenario())
        assert response.status == 200
        payload = response.json()
        assert payload["epoch"] == 1
        results = payload["results"]
        assert len(results) == 3
        assert "cluster" in results[0] and "cluster" in results[2]
        assert results[1] == {"error": "unencodable sequence"}

    def test_queue_overflow_is_503_with_retry_after(
        self, serve_model_path, query_strings
    ):
        async def scenario():
            # queue bound 1 and a generous delay window: the flood must
            # overflow while the dispatcher is still waiting.
            app = make_app(
                serve_model_path, max_batch=256, max_delay=0.2, max_queue=1
            )
            host, port = await app.start()
            try:
                responses = await asyncio.gather(
                    *(
                        http_call(
                            host, port, "POST", "/v1/classify", {"sequence": s}
                        )
                        for s in query_strings * 3
                    )
                )
            finally:
                await app.close()
            return responses, app.batcher.stats

        responses, stats = run(scenario())
        statuses = sorted({r.status for r in responses})
        assert statuses == [200, 503]
        rejected = [r for r in responses if r.status == 503]
        assert stats.rejected == len(rejected)
        for response in rejected:
            assert response.headers["retry-after"] == "1"
            assert "capacity" in response.json()["error"]

    def test_bad_bodies_are_400(self, serve_model_path):
        async def scenario():
            app = make_app(serve_model_path)
            host, port = await app.start()
            try:
                empty = await http_call(host, port, "POST", "/v1/classify", {})
                wrong = await http_call(
                    host, port, "POST", "/v1/classify", {"sequences": [7]}
                )
                not_obj = await http_call(
                    host, port, "POST", "/v1/classify", [1, 2]
                )
            finally:
                await app.close()
            return empty, wrong, not_obj

        for response in run(scenario()):
            assert response.status == 400

    def test_get_classify_is_405(self, serve_model_path):
        async def scenario():
            app = make_app(serve_model_path)
            host, port = await app.start()
            try:
                return await http_call(host, port, "GET", "/v1/classify")
            finally:
                await app.close()

        assert run(scenario()).status == 405


class TestHotSwap:
    def test_inflight_requests_survive_reload(
        self, serve_model_path, query_strings, tmp_path
    ):
        """A reload under load drops nothing and tears nothing.

        Both model generations are loaded from the same snapshot, so
        *every* response must match the single expected outcome set —
        a torn read (half old arrays, half new) would break bit
        equality — while epochs recorded across the run prove the swap
        actually happened mid-flight.
        """

        async def scenario():
            app = make_app(
                serve_model_path, max_batch=8, max_delay=0.005, max_queue=512
            )
            host, port = await app.start()
            try:
                expected = await http_call(
                    host,
                    port,
                    "POST",
                    "/v1/classify",
                    {"sequences": query_strings},
                )
                calls = [
                    http_call(
                        host, port, "POST", "/v1/classify",
                        {"sequences": query_strings},
                    )
                    for _ in range(30)
                ]
                reloads = [
                    http_call(
                        host, port, "POST", "/admin/models/default/reload"
                    )
                    for _ in range(3)
                ]
                responses = await asyncio.gather(*calls, *reloads)
            finally:
                await app.close()
            return expected, responses[:30], responses[30:]

        expected, classifies, reloads = run(scenario())
        assert expected.status == 200
        baseline = expected.json()["results"]
        assert all(r.status == 200 for r in reloads)
        epochs = set()
        for response in classifies:
            assert response.status == 200
            payload = response.json()
            epochs.add(payload["epoch"])
            assert payload["results"] == baseline
        assert len(epochs) >= 1  # every one whole, from some single epoch


class TestOtherEndpoints:
    def test_healthz_clusters_stats(self, serve_model_path):
        async def scenario():
            app = make_app(serve_model_path)
            host, port = await app.start()
            try:
                health = await http_call(host, port, "GET", "/healthz")
                clusters = await http_call(host, port, "GET", "/v1/clusters")
                stats = await http_call(host, port, "GET", "/v1/stats")
                missing = await http_call(host, port, "GET", "/nowhere")
            finally:
                await app.close()
            return health, clusters, stats, missing

        health, clusters, stats, missing = run(scenario())
        assert health.status == 200
        assert health.json()["status"] == "ok"
        assert health.json()["pool"] == "absent"
        payload = clusters.json()
        assert clusters.status == 200
        assert payload["model"] == "default"
        assert payload["clusters"]
        assert {"cluster", "size", "pst_nodes"} <= set(payload["clusters"][0])
        body = stats.json()
        assert stats.status == 200
        assert "batching" in body and "models" in body
        assert missing.status == 404

    def test_ingest_absorbs_and_counts(self, serve_model_path, query_strings):
        async def scenario():
            app = make_app(serve_model_path)
            host, port = await app.start()
            try:
                ingest = await http_call(
                    host,
                    port,
                    "POST",
                    "/v1/stream/ingest",
                    {"sequences": [query_strings[0], "§§§"]},
                )
                # The mutated model must still classify (scorer
                # re-flattens trees whose version moved).
                after = await http_call(
                    host, port, "POST", "/v1/classify",
                    {"sequence": query_strings[0]},
                )
            finally:
                await app.close()
            return ingest, after

        ingest, after = run(scenario())
        assert ingest.status == 200
        payload = ingest.json()
        assert payload["skipped"] == 1
        assert len(payload["assignments"]) == 2
        assert payload["assignments"][1] is None
        assert after.status == 200

    def test_reload_errors(self, serve_model_path, tmp_path):
        async def scenario():
            app = make_app(serve_model_path)
            host, port = await app.start()
            try:
                ghost = await http_call(
                    host, port, "POST", "/admin/models/ghost/reload"
                )
                bad_source = await http_call(
                    host,
                    port,
                    "POST",
                    "/admin/models/default/reload",
                    {"path": str(tmp_path / "missing.json")},
                )
                bad_body = await http_call(
                    host,
                    port,
                    "POST",
                    "/admin/models/default/reload",
                    {"path": 7},
                )
            finally:
                await app.close()
            return ghost, bad_source, bad_body

        ghost, bad_source, bad_body = run(scenario())
        assert ghost.status == 404
        assert bad_source.status == 422
        assert bad_body.status == 400

    def test_reload_swaps_to_new_source(
        self, serve_model_path, query_strings, tmp_path
    ):
        async def scenario():
            app = make_app(serve_model_path)
            host, port = await app.start()
            try:
                before = await http_call(host, port, "GET", "/v1/clusters")
                reload_ = await http_call(
                    host,
                    port,
                    "POST",
                    "/admin/models/default/reload",
                    {"path": serve_model_path},
                )
                after = await http_call(host, port, "GET", "/v1/clusters")
            finally:
                await app.close()
            return before, reload_, after

        before, reload_, after = run(scenario())
        assert before.json()["epoch"] == 1
        assert reload_.status == 200 and reload_.json()["epoch"] == 2
        assert after.json()["epoch"] == 2

    def test_metrics_endpoint_exposes_serve_series(
        self, serve_model_path, query_strings
    ):
        async def scenario():
            app = make_app(serve_model_path)
            host, port = await app.start()
            try:
                await http_call(
                    host, port, "POST", "/v1/classify",
                    {"sequence": query_strings[0]},
                )
                return await http_call(host, port, "GET", "/metrics")
            finally:
                await app.close()

        with use_registry(MetricsRegistry()):
            response = run(scenario())
        assert response.status == 200
        assert response.content_type.startswith("text/plain")
        text = response.body.decode()
        assert "serve_requests" in text
        assert "serve_batch_flushes" in text

    def test_metrics_endpoint_without_registry(self, serve_model_path):
        async def scenario():
            app = make_app(serve_model_path)
            host, port = await app.start()
            try:
                return await http_call(host, port, "GET", "/metrics")
            finally:
                await app.close()

        response = run(scenario())
        assert response.status == 200
        assert b"disabled" in response.body


class TestCliParser:
    def test_serve_arguments_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve",
                "model.json",
                "--name",
                "prod",
                "--port",
                "0",
                "--max-batch",
                "32",
                "--batch-delay-ms",
                "1.5",
                "--queue-size",
                "128",
                "--workers",
                "2",
                "--ready-file",
                "/tmp/ready",
            ]
        )
        assert args.command == "serve"
        assert args.model == "model.json"
        assert args.name == "prod"
        assert args.port == 0
        assert args.max_batch == 32
        assert args.batch_delay_ms == 1.5
        assert args.queue_size == 128
        assert args.workers == 2
        assert args.ready_file == "/tmp/ready"

    def test_cli_serve_rejects_bad_model(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["serve", str(tmp_path / "missing.json"), "--port", "0"])
        assert code == 1
        assert "no model source" in capsys.readouterr().err


class TestShutdown:
    def test_close_fails_pending_requests(self, serve_model_path, query_strings):
        async def scenario():
            app = make_app(
                serve_model_path, max_batch=256, max_delay=5.0, max_queue=64
            )
            await app.start()
            task = asyncio.get_running_loop().create_task(
                app.batcher.submit([list(query_strings[0])])
            )
            await asyncio.sleep(0.05)  # parked in the delay window
            await app.close()
            with pytest.raises(RuntimeError, match="shutting down"):
                await task

        run(scenario())


def test_save_and_serve_second_model(tmp_path, query_strings):
    """Registry holds several named models; routes address them by name."""
    from repro.core.cluseq import CLUSEQ, CluseqParams

    db = generate_two_cluster_toy(size_per_cluster=10, length=30, seed=3)
    result = CLUSEQ(
        CluseqParams(k=2, significance_threshold=3, seed=0)
    ).fit(db)
    path = tmp_path / "second.json"
    save_result(result, str(path), alphabet=db.alphabet)

    registry = ModelRegistry()
    registry.load("a", str(path))
    registry.load("b", str(path))
    assert registry.names() == ["a", "b"]
    assert registry.get("a").epoch == 1
    registry.reload("b")
    assert registry.get("b").epoch == 2
    assert registry.get("a").epoch == 1


def test_query_strings_fixture_sanity(query_strings):
    assert query_strings and all(isinstance(s, str) for s in query_strings)
    assert json.dumps(query_strings)  # JSON-serializable for request bodies
