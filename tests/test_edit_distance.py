"""Tests for repro.baselines.edit_distance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.edit_distance import (
    EditDistanceClusterer,
    banded_edit_distance,
    edit_distance,
    normalized_edit_distance,
    pairwise_distance_matrix,
)
from repro.sequences.database import SequenceDatabase


def reference_edit_distance(a, b):
    """Classic O(n·m) scalar DP, as ground truth."""
    n, m = len(a), len(b)
    dp = list(range(m + 1))
    for i in range(1, n + 1):
        prev_diag = dp[0]
        dp[0] = i
        for j in range(1, m + 1):
            temp = dp[j]
            dp[j] = min(
                dp[j] + 1,
                dp[j - 1] + 1,
                prev_diag + (a[i - 1] != b[j - 1]),
            )
            prev_diag = temp
    return dp[m]


class TestKnownValues:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("abc", "", 3),
            ("", "abc", 3),
            ("abc", "abc", 0),
            ("abc", "abd", 1),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("aaaabbb", "bbbaaaa", 6),  # the paper's footnote example
            ("aaaabbb", "abcdefg", 6),
        ],
    )
    def test_strings(self, a, b, expected):
        encode = {c: i for i, c in enumerate("abcdefgiklmnstw")}
        ea = [encode[c] for c in a]
        eb = [encode[c] for c in b]
        assert edit_distance(ea, eb) == expected

    def test_paper_footnote_weakness(self):
        """The paper's motivating example: ED cannot tell that aaaabbb
        is far more similar to bbbaaaa than to abcdefg."""
        encode = {c: i for i, c in enumerate("abcdefg")}
        rearranged = edit_distance(
            [encode[c] for c in "aaaabbb"], [encode[c] for c in "bbbaaaa"]
        )
        unrelated = edit_distance(
            [encode[c] for c in "aaaabbb"], [encode[c] for c in "abcdefg"]
        )
        assert rearranged == unrelated  # both 6 — the weakness itself


class TestNormalized:
    def test_range(self):
        assert normalized_edit_distance([0, 1], [1, 0]) <= 1.0
        assert normalized_edit_distance([0], [0]) == 0.0
        assert normalized_edit_distance([], []) == 0.0

    def test_divides_by_longer(self):
        assert normalized_edit_distance([0, 0, 0, 0], [1]) == pytest.approx(1.0)


class TestMatrix:
    def test_symmetric_zero_diagonal(self):
        sequences = [[0, 1, 0], [1, 1], [0, 0, 0, 0]]
        matrix = pairwise_distance_matrix(sequences)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0)

    def test_unnormalized(self):
        sequences = [[0, 1], [1, 1]]
        matrix = pairwise_distance_matrix(sequences, normalized=False)
        assert matrix[0, 1] == 1


class TestClusterer:
    def test_separates_obvious_groups(self):
        db = SequenceDatabase.from_strings(
            ["aaaaaaa", "aaaaaab", "aabaaaa", "bbbbbbb", "bbbbbba", "babbbbb"]
        )
        result = EditDistanceClusterer(seed=0).fit_predict(db, 2)
        assert result.labels[0] == result.labels[1] == result.labels[2]
        assert result.labels[3] == result.labels[4] == result.labels[5]
        assert result.labels[0] != result.labels[3]
        assert result.model_name == "ED"
        assert result.elapsed_seconds > 0

    def test_validation(self):
        db = SequenceDatabase.from_strings(["ab", "ba"])
        with pytest.raises(ValueError):
            EditDistanceClusterer().fit_predict(db, 0)
        with pytest.raises(ValueError):
            EditDistanceClusterer().fit_predict(db, 3)


class TestBanded:
    def test_wide_band_equals_exact(self):
        a = [0, 1, 2, 1, 0, 2]
        b = [1, 1, 2, 0, 0]
        assert banded_edit_distance(a, b, band=10) == edit_distance(a, b)

    def test_band_zero_diagonal_only(self):
        # Equal lengths: band 0 counts positionwise mismatches.
        assert banded_edit_distance([0, 1, 2], [0, 2, 2], band=0) == 1

    def test_length_difference_beyond_band(self):
        assert banded_edit_distance([0] * 10, [0], band=2) == 10

    def test_empty_inputs(self):
        assert banded_edit_distance([], [], band=3) == 0
        assert banded_edit_distance([0, 1], [], band=3) == 2

    def test_negative_band_rejected(self):
        with pytest.raises(ValueError):
            banded_edit_distance([0], [1], band=-1)

    def test_upper_bound_property(self):
        import numpy as np

        rng = np.random.default_rng(0)
        for _ in range(30):
            a = list(rng.integers(0, 3, size=int(rng.integers(0, 20))))
            b = list(rng.integers(0, 3, size=int(rng.integers(0, 20))))
            exact = edit_distance(a, b)
            for band in (0, 1, 3, 40):
                assert banded_edit_distance(a, b, band) >= exact
            assert banded_edit_distance(a, b, 40) == exact


sequences_strategy = st.lists(st.integers(0, 3), min_size=0, max_size=25)


@settings(max_examples=80, deadline=None)
@given(sequences_strategy, sequences_strategy)
def test_matches_reference_dp(a, b):
    """The vectorised DP must equal the scalar reference exactly."""
    assert edit_distance(a, b) == reference_edit_distance(a, b)


@settings(max_examples=50, deadline=None)
@given(sequences_strategy, sequences_strategy, sequences_strategy)
def test_metric_properties(a, b, c):
    """Edit distance is a metric: symmetry, identity, triangle."""
    assert edit_distance(a, b) == edit_distance(b, a)
    assert edit_distance(a, a) == 0
    assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)


@settings(max_examples=50, deadline=None)
@given(sequences_strategy, sequences_strategy)
def test_bounds(a, b):
    """|len(a)-len(b)| <= ED <= max(len)."""
    d = edit_distance(a, b)
    assert abs(len(a) - len(b)) <= d <= max(len(a), len(b), 0)
