"""Tests for the v2 flow-sensitive analyzer (``tools.checkers``).

Covers the CFG builder and the must-dataflow engine construct by
construct (branches, loops with ``break``/``continue``, ``try`` in all
its forms, ``with``, nested functions, early ``return``/``raise``),
then each whole-program rule (CLQ007–CLQ010) with firing, passing and
suppressed fixtures, and finally the baseline and SARIF plumbing.
"""

from __future__ import annotations

import ast
import json
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

from tools.checkers import Checker, get_rule  # noqa: E402
from tools.checkers.cfg import build_cfg, walk_element  # noqa: E402
from tools.checkers.cli import main as cli_main  # noqa: E402
from tools.checkers.dataflow import BackwardMust, ForwardMust  # noqa: E402
from tools.checkers.sarif import to_sarif  # noqa: E402
from tools.checkers.symbols import ProgramIndex  # noqa: E402
from tools.checkers.engine import FileContext  # noqa: E402


# -- helpers ------------------------------------------------------------------


def _func(source: str) -> ast.FunctionDef:
    tree = ast.parse(textwrap.dedent(source))
    func = tree.body[0]
    assert isinstance(func, ast.FunctionDef)
    return func


def _is_mark(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "mark"
    )


def _find_element(cfg, needle: str):
    """The (block, index) of the first element containing Name *needle*."""
    for block, index, element in cfg.iter_elements():
        for node in walk_element(element):
            if isinstance(node, ast.Name) and node.id == needle:
                return block, index
    raise AssertionError(f"no element mentions {needle!r}")


def forward_at(source: str, needle: str = "probe") -> bool:
    func = _func(source)
    cfg = build_cfg(func)
    block, index = _find_element(cfg, needle)
    return ForwardMust(cfg, _is_mark).before(block, index)


def backward_at(source: str, needle: str = "probe", include_raises: bool = True) -> bool:
    func = _func(source)
    cfg = build_cfg(func)
    block, index = _find_element(cfg, needle)
    exits = cfg.exits(include_raises=include_raises)
    return BackwardMust(cfg, _is_mark, exits=exits).after(block, index)


def check_source(tmp_path: Path, relpath: str, source: str, rule_id: str):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return Checker(rules=[get_rule(rule_id)]).check_file(path)


def check_tree(tmp_path: Path, files: dict[str, str], rule_id: str):
    """Write *files* under ``tmp_path`` and run one rule whole-program."""
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    checker = Checker(rules=[get_rule(rule_id)])
    violations, _ = checker.check_targets([tmp_path])
    return violations


# -- CFG + dataflow ------------------------------------------------------------


class TestForwardMust:
    def test_straight_line(self):
        assert forward_at(
            """
            def f():
                mark()
                probe = 1
            """
        )

    def test_if_without_else_is_not_must(self):
        assert not forward_at(
            """
            def f(c):
                if c:
                    mark()
                probe = 1
            """
        )

    def test_if_else_both_arms(self):
        assert forward_at(
            """
            def f(c):
                if c:
                    mark()
                else:
                    mark()
                probe = 1
            """
        )

    def test_elif_chain_missing_default(self):
        assert not forward_at(
            """
            def f(c):
                if c == 1:
                    mark()
                elif c == 2:
                    mark()
                probe = 1
            """
        )

    def test_loop_body_may_not_run(self):
        assert not forward_at(
            """
            def f(items):
                for x in items:
                    mark()
                probe = 1
            """
        )

    def test_before_loop_survives_loop(self):
        assert forward_at(
            """
            def f(items):
                mark()
                for x in items:
                    pass
                probe = 1
            """
        )

    def test_while_true_break_can_skip(self):
        assert not forward_at(
            """
            def f(c):
                while True:
                    if c:
                        break
                    mark()
                probe = 1
            """
        )

    def test_continue_can_skip(self):
        # The continue path loops back to the header, which can exit.
        assert not forward_at(
            """
            def f(items):
                for x in items:
                    if x:
                        continue
                    mark()
                probe = 1
            """
        )

    def test_nested_def_is_opaque(self):
        assert not forward_at(
            """
            def f():
                def inner():
                    mark()
                probe = 1
            """
        )

    def test_with_item_is_an_element(self):
        assert forward_at(
            """
            def f(p):
                with mark():
                    probe = 1
            """
        )

    def test_same_element_does_not_cover_itself(self):
        # The probe element precedes any later mark.
        assert not forward_at(
            """
            def f():
                probe = 1
                mark()
            """
        )


class TestBackwardMust:
    def test_straight_line(self):
        assert backward_at(
            """
            def f():
                probe = 1
                mark()
            """
        )

    def test_early_return_skips(self):
        assert not backward_at(
            """
            def f(c):
                probe = 1
                if c:
                    return 0
                mark()
            """
        )

    def test_raise_path_counts_by_default(self):
        assert not backward_at(
            """
            def f(c):
                probe = 1
                if c:
                    raise ValueError("boom")
                mark()
            """
        )

    def test_raise_path_ignorable(self):
        assert backward_at(
            """
            def f(c):
                probe = 1
                if c:
                    raise ValueError("boom")
                mark()
            """,
            include_raises=False,
        )

    def test_finally_covers_return_paths(self):
        # The key precision property: `return` inside try still flows
        # through its own copy of the finally body.
        assert backward_at(
            """
            def f(c):
                probe = 1
                try:
                    if c:
                        return 0
                    return 1
                finally:
                    mark()
            """
        )

    def test_straightline_close_does_not_cover_raise_in_try(self):
        # A raise inside try/except escapes via the bare handler re-raise.
        assert not backward_at(
            """
            def f(c):
                probe = 1
                try:
                    step()
                except ValueError:
                    raise
                mark()
            """
        )

    def test_handler_with_mark_restores_cover(self):
        assert backward_at(
            """
            def f(c):
                probe = 1
                try:
                    step()
                except ValueError:
                    mark()
                    return 0
                mark()
            """
        )

    def test_loop_break_skips_mark(self):
        assert not backward_at(
            """
            def f(items):
                probe = 1
                for x in items:
                    if x:
                        break
                    mark()
                    return x
                return 0
            """
        )


# -- CLQ007: cache-invalidation soundness --------------------------------------


_TREE_PRELUDE = """
class Tree:
    def __init__(self):
        self._version = 0
        self.count = 0
        self.root = None

    def _invalidate(self):
        self._version += 1
"""


class TestCacheInvalidation:
    def test_mutation_with_early_return_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/t.py",
            _TREE_PRELUDE
            + """
    def bad(self, n):
        self.count += n
        if n > 0:
            return n
        self._invalidate()
""",
            "CLQ007",
        )
        assert [v.rule_id for v in violations] == ["CLQ007"]
        assert "_invalidate()" in violations[0].message

    def test_mutate_then_raise_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/t.py",
            _TREE_PRELUDE
            + """
    def bad(self, n):
        self.count += n
        if n < 0:
            raise ValueError("n")
        self._invalidate()
""",
            "CLQ007",
        )
        assert [v.rule_id for v in violations] == ["CLQ007"]

    def test_alias_mutation_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/t.py",
            _TREE_PRELUDE
            + """
    def bad(self, s):
        nxt = self.root.next_counts
        nxt[s] = nxt.get(s, 0) + 1
""",
            "CLQ007",
        )
        assert [v.rule_id for v in violations] == ["CLQ007"]

    def test_container_method_mutation_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/t.py",
            _TREE_PRELUDE
            + """
    def bad(self, s):
        self.children.pop(s, None)
""",
            "CLQ007",
        )
        assert [v.rule_id for v in violations] == ["CLQ007"]

    def test_invalidate_first_passes(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/t.py",
            _TREE_PRELUDE
            + """
    def decay(self, n):
        self._invalidate()
        self.count -= n
        if self.count < 0:
            raise ValueError("negative")
""",
            "CLQ007",
        )
        assert violations == []

    def test_invalidate_after_on_all_paths_passes(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/t.py",
            _TREE_PRELUDE
            + """
    def load(self, n):
        self.count = n
        self._invalidate()
""",
            "CLQ007",
        )
        assert violations == []

    def test_class_without_version_is_out_of_scope(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/t.py",
            """
class Plain:
    def bad(self, n):
        self.count += n
""",
            "CLQ007",
        )
        assert violations == []

    def test_suppression_comment(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/t.py",
            _TREE_PRELUDE
            + """
    def recount(self):
        self.count = 0  # cluseq: ignore[CLQ007]
""",
            "CLQ007",
        )
        assert violations == []

    def test_test_code_exempt(self, tmp_path):
        violations = check_source(
            tmp_path,
            "tests/test_t.py",
            _TREE_PRELUDE
            + """
    def bad(self, n):
        self.count += n
""",
            "CLQ007",
        )
        assert violations == []


# -- CLQ008: durability protocol -----------------------------------------------


class TestDurability:
    def test_unapproved_write_open_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/stream/w.py",
            """
def dump(path, data):
    with open(path, "w") as fh:
        fh.write(data)
""",
            "CLQ008",
        )
        assert [v.rule_id for v in violations] == ["CLQ008"]

    def test_fsyncing_function_is_approved(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/stream/w.py",
            """
import os

def dump(path, data):
    with open(path, "w") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
""",
            "CLQ008",
        )
        assert violations == []

    def test_fsync_discipline_is_class_wide(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/stream/w.py",
            """
import os

class Journal:
    def close(self):
        self._fh.close()

    def _ensure(self, path):
        self._fh = open(path, "a")

    def _write(self, line):
        self._fh.write(line)
        self._fh.flush()
        os.fsync(self._fh.fileno())
""",
            "CLQ008",
        )
        assert violations == []

    def test_read_open_is_fine(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/stream/w.py",
            """
def load(path):
    with open(path, encoding="utf-8") as fh:
        return fh.read()
""",
            "CLQ008",
        )
        assert violations == []

    def test_write_text_always_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/stream/w.py",
            """
def dump(path, data):
    path.write_text(data)
""",
            "CLQ008",
        )
        assert [v.rule_id for v in violations] == ["CLQ008"]
        assert "write_text" in violations[0].message

    def test_replace_with_branch_only_fsync_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/stream/w.py",
            """
import os

def swap(tmp, dst, profiled):
    with open(tmp, "w") as fh:
        fh.write("x")
        if profiled:
            os.fsync(fh.fileno())
    os.replace(tmp, dst)
""",
            "CLQ008",
        )
        assert [v.rule_id for v in violations] == ["CLQ008"]
        assert "os.replace" in violations[0].message

    def test_replace_with_unconditional_fsync_passes(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/stream/w.py",
            """
import os

def swap(tmp, dst):
    with open(tmp, "w") as fh:
        fh.write("x")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, dst)
""",
            "CLQ008",
        )
        assert violations == []

    def test_outside_stream_package_is_out_of_scope(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/w.py",
            """
def dump(path, data):
    with open(path, "w") as fh:
        fh.write(data)
""",
            "CLQ008",
        )
        assert violations == []


# -- CLQ009: resource discipline -----------------------------------------------


class TestResourceDiscipline:
    def test_inline_leak_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/r.py",
            """
def slurp(path):
    return open(path).read()
""",
            "CLQ009",
        )
        assert [v.rule_id for v in violations] == ["CLQ009"]
        assert "inline" in violations[0].message

    def test_with_block_passes(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/r.py",
            """
def slurp(path):
    with open(path) as fh:
        return fh.read()
""",
            "CLQ009",
        )
        assert violations == []

    def test_try_finally_close_passes(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/r.py",
            """
def slurp(path):
    fh = open(path)
    try:
        return fh.read()
    finally:
        fh.close()
""",
            "CLQ009",
        )
        assert violations == []

    def test_close_skipped_by_early_return_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/r.py",
            """
def slurp(path, flag):
    fh = open(path)
    if flag:
        return None
    data = fh.read()
    fh.close()
    return data
""",
            "CLQ009",
        )
        assert [v.rule_id for v in violations] == ["CLQ009"]

    def test_straightline_close_without_finally_fires(self, tmp_path):
        # fh.read() inside try/except can jump to the handler and
        # return without closing.
        violations = check_source(
            tmp_path,
            "src/repro/core/r.py",
            """
def slurp(path):
    fh = open(path)
    try:
        data = fh.read()
    except OSError:
        return None
    fh.close()
    return data
""",
            "CLQ009",
        )
        assert [v.rule_id for v in violations] == ["CLQ009"]

    def test_ownership_transfer_return_passes(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/r.py",
            """
def acquire(path):
    return open(path)

def acquire_tuple(path):
    return open(path), True

def acquire_named(path):
    fh = open(path)
    return fh
""",
            "CLQ009",
        )
        assert violations == []

    def test_self_attr_on_lifecycle_class_passes(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/r.py",
            """
class Exporter:
    def __init__(self, path):
        self._fh = open(path, "w")

    def close(self):
        self._fh.close()
""",
            "CLQ009",
        )
        assert violations == []

    def test_self_attr_without_lifecycle_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/r.py",
            """
class Exporter:
    def __init__(self, path):
        self._fh = open(path, "w")
""",
            "CLQ009",
        )
        assert [v.rule_id for v in violations] == ["CLQ009"]
        assert "close()/__exit__()" in violations[0].message

    def test_lock_acquire_release_in_finally_passes(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/r.py",
            """
def locked(lock):
    handle = lock.acquire()
    try:
        return work()
    finally:
        handle.release()
""",
            "CLQ009",
        )
        assert violations == []

    def test_test_code_only_checks_inline_leaks(self, tmp_path):
        violations = check_source(
            tmp_path,
            "tests/test_r.py",
            """
def test_fixture(path):
    fh = open(path)  # closed by a pytest finalizer the CFG cannot see
    assert fh

def test_leak(path):
    assert open(path).read() == "x"
""",
            "CLQ009",
        )
        assert len(violations) == 1
        assert "inline" in violations[0].message

    def test_leaked_pool_constructor_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/r.py",
            """
def score(flats, sequences):
    pool = ScoringPool(2)
    results = pool.prescore_lists(flats, sequences)
    return results
""",
            "CLQ009",
        )
        assert [v.rule_id for v in violations] == ["CLQ009"]
        assert "ScoringPool" in violations[0].message

    def test_pool_with_block_passes(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/r.py",
            """
def score(flats, sequences):
    with ScoringPool(2) as pool:
        return pool.prescore_lists(flats, sequences)
""",
            "CLQ009",
        )
        assert violations == []

    def test_qualified_executor_constructor_fires(self, tmp_path):
        # The Attribute arm: futures.ProcessPoolExecutor(...) is the
        # same acquisition as the bare name.
        violations = check_source(
            tmp_path,
            "src/repro/core/r.py",
            """
from concurrent import futures

def fan_out(tasks):
    executor = futures.ProcessPoolExecutor(2)
    handles = [executor.submit(t) for t in tasks]
    return [h.result() for h in handles]
""",
            "CLQ009",
        )
        assert [v.rule_id for v in violations] == ["CLQ009"]
        assert "ProcessPoolExecutor" in violations[0].message

    def test_shared_memory_closed_on_all_paths_passes(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/r.py",
            """
def attach(name):
    segment = SharedMemory(name=name)
    try:
        return bytes(segment.buf)
    finally:
        segment.close()
""",
            "CLQ009",
        )
        assert violations == []

    def test_shared_memory_leak_fires(self, tmp_path):
        violations = check_source(
            tmp_path,
            "src/repro/core/r.py",
            """
def attach(name):
    segment = SharedMemory(name=name)
    payload = bytes(segment.buf)
    return payload
""",
            "CLQ009",
        )
        assert [v.rule_id for v in violations] == ["CLQ009"]
        assert "SharedMemory" in violations[0].message

    def test_executor_as_self_attr_with_close_passes(self, tmp_path):
        # The parallel module's shape: the executor and the segment
        # store live on a resources object whose close() releases both.
        violations = check_source(
            tmp_path,
            "src/repro/core/r.py",
            """
class PoolResources:
    def __init__(self, workers):
        self.executor = ProcessPoolExecutor(workers)

    def close(self):
        self.executor.shutdown()
""",
            "CLQ009",
        )
        assert violations == []


# -- CLQ010: telemetry-name registry -------------------------------------------


_REGISTRY_SRC = """
METRICS = frozenset({"pst.final_nodes", "cluseq.iterations"})
METRIC_PREFIXES = ("profile.",)
SPANS = frozenset({"cluseq"})
SPAN_PREFIXES = ("baseline.",)
KERNELS = frozenset({"flatten"})
CACHES = frozenset({"flat"})
LATENCIES = frozenset({"wal_fsync"})
"""


def _clq010(tmp_path, emitter_source):
    return check_tree(
        tmp_path,
        {
            "src/repro/obs/names.py": _REGISTRY_SRC,
            "src/repro/core/m.py": emitter_source,
        },
        "CLQ010",
    )


class TestMetricRegistry:
    def test_declared_names_pass(self, tmp_path):
        violations = _clq010(
            tmp_path,
            """
def run(metrics, tracer, prof, n):
    metrics.counter("cluseq.iterations", n)
    metrics.gauge("pst.final_nodes", n)
    with tracer.span("cluseq"):
        pass
    with prof.kernel("flatten"):
        pass
    prof.cache_hit("flat")
    prof.cache_miss("flat")
    prof.latency("wal_fsync", 0.1)
""",
        )
        assert violations == []

    def test_typod_metric_fires(self, tmp_path):
        violations = _clq010(
            tmp_path,
            """
def run(metrics, n):
    metrics.counter("cluseq.iterattions", n)
""",
        )
        assert [v.rule_id for v in violations] == ["CLQ010"]
        assert "cluseq.iterattions" in violations[0].message

    def test_undeclared_span_kernel_cache_latency_fire(self, tmp_path):
        violations = _clq010(
            tmp_path,
            """
def run(tracer, prof):
    with tracer.span("mystery"):
        pass
    with prof.kernel("mystery"):
        pass
    prof.cache_hit("mystery")
    prof.latency("mystery", 0.1)
""",
        )
        assert [v.rule_id for v in violations] == ["CLQ010"] * 4

    def test_fstring_head_resolution(self, tmp_path):
        violations = _clq010(
            tmp_path,
            """
def run(metrics, tracer, name):
    metrics.counter(f"profile.kernel.{name}", 1)  # declared prefix
    metrics.counter(f"cluseq.iter{name}", 1)  # completable head
    with tracer.span(f"baseline.{name}"):
        pass
    metrics.counter(f"bogus.{name}", 1)  # nothing can complete this
""",
        )
        assert len(violations) == 1
        assert "bogus." in violations[0].message

    def test_non_literal_and_non_string_args_are_skipped(self, tmp_path):
        violations = _clq010(
            tmp_path,
            """
def run(metrics, match, name):
    metrics.counter(name, 1)  # forwarded name: out of scope
    match.span(1)  # re.Match.span — not a telemetry site
""",
        )
        assert violations == []

    def test_quiet_without_registry_module(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "src/repro/core/m.py": """
def run(metrics):
    metrics.counter("totally.bogus", 1)
""",
            },
            "CLQ010",
        )
        assert violations == []

    def test_registry_parses_from_real_module(self):
        names_path = REPO_ROOT / "src" / "repro" / "obs" / "names.py"
        context = FileContext.from_path(names_path)
        index = ProgramIndex.build([context])
        assert index.names is not None
        assert "cluseq.iterations" in index.names.metrics
        assert index.names.resolves_metric("span.cluseq")
        assert index.names.resolves_span("stream.batch")


# -- baseline workflow ---------------------------------------------------------


_MUTABLE_DEFAULT = """
def f(xs=[]):
    return xs
"""


class TestBaseline:
    def _write_target(self, tmp_path, source=_MUTABLE_DEFAULT):
        target = tmp_path / "src" / "repro" / "core" / "b.py"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
        return target

    def test_update_then_filter_roundtrip(self, tmp_path, capsys):
        target = self._write_target(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert (
            cli_main(
                [str(target), "--select", "CLQ004", "--baseline", str(baseline), "--update-baseline"]
            )
            == 0
        )
        data = json.loads(baseline.read_text())
        assert data["version"] == 1 and len(data["findings"]) == 1
        # With the baseline the gate is green again.
        assert (
            cli_main([str(target), "--select", "CLQ004", "--baseline", str(baseline)])
            == 0
        )
        capsys.readouterr()

    def test_fingerprint_survives_edits_above(self, tmp_path, capsys):
        target = self._write_target(tmp_path)
        baseline = tmp_path / "baseline.json"
        cli_main(
            [str(target), "--select", "CLQ004", "--baseline", str(baseline), "--update-baseline"]
        )
        # Insert lines above the finding: line numbers shift, text does not.
        target.write_text(
            "# a new comment\n\n" + target.read_text(), encoding="utf-8"
        )
        assert (
            cli_main([str(target), "--select", "CLQ004", "--baseline", str(baseline)])
            == 0
        )
        capsys.readouterr()

    def test_new_finding_is_not_absorbed(self, tmp_path, capsys):
        target = self._write_target(tmp_path)
        baseline = tmp_path / "baseline.json"
        cli_main(
            [str(target), "--select", "CLQ004", "--baseline", str(baseline), "--update-baseline"]
        )
        target.write_text(
            target.read_text() + "\ndef g(ys={}):\n    return ys\n",
            encoding="utf-8",
        )
        assert (
            cli_main([str(target), "--select", "CLQ004", "--baseline", str(baseline)])
            == 1
        )
        out = capsys.readouterr().out
        assert "CLQ004" in out
        # The baseline itself still holds only the original finding.
        assert len(json.loads(baseline.read_text())["findings"]) == 1

    def test_committed_baseline_is_empty(self):
        committed = REPO_ROOT / "tools" / "checkers" / "baseline.json"
        data = json.loads(committed.read_text())
        assert data["findings"] == []


# -- SARIF export --------------------------------------------------------------


class TestSarif:
    def _sarif_for_violation(self, tmp_path):
        target = tmp_path / "src" / "repro" / "core" / "s.py"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(_MUTABLE_DEFAULT, encoding="utf-8")
        sarif_path = tmp_path / "out.sarif"
        code = cli_main(
            [str(target), "--select", "CLQ004", "--sarif", str(sarif_path), "--quiet"]
        )
        assert code == 1
        return json.loads(sarif_path.read_text())

    def test_document_structure(self, tmp_path, capsys):
        doc = self._sarif_for_violation(tmp_path)
        capsys.readouterr()
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        (run,) = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "cluseq-checkers"
        assert [r["id"] for r in driver["rules"]] == ["CLQ004"]
        (result,) = run["results"]
        assert result["ruleId"] == "CLQ004"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("src/repro/core/s.py")
        assert "\\" not in location["artifactLocation"]["uri"]
        assert location["region"]["startLine"] >= 1
        assert location["region"]["startColumn"] >= 1

    def test_empty_run_is_valid_and_lists_all_rules(self):
        from tools.checkers import all_rules

        doc = to_sarif([], all_rules())
        (run,) = doc["runs"]
        ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert ids == [f"CLQ{n:03d}" for n in range(1, 11)]
        assert run["results"] == []

    def test_validates_against_sarif_schema_subset(self, tmp_path, capsys):
        jsonschema = pytest.importorskip("jsonschema")
        doc = self._sarif_for_violation(tmp_path)
        capsys.readouterr()
        # The load-bearing constraints of the published 2.1.0 schema,
        # inlined (CI has no network): required properties, enum'd
        # version, 1-based region coordinates.
        schema = {
            "type": "object",
            "required": ["version", "runs"],
            "properties": {
                "version": {"enum": ["2.1.0"]},
                "runs": {
                    "type": "array",
                    "minItems": 1,
                    "items": {
                        "type": "object",
                        "required": ["tool"],
                        "properties": {
                            "tool": {
                                "type": "object",
                                "required": ["driver"],
                                "properties": {
                                    "driver": {
                                        "type": "object",
                                        "required": ["name"],
                                    }
                                },
                            },
                            "results": {
                                "type": "array",
                                "items": {
                                    "type": "object",
                                    "required": ["message"],
                                    "properties": {
                                        "message": {
                                            "type": "object",
                                            "required": ["text"],
                                        },
                                        "locations": {
                                            "type": "array",
                                            "items": {
                                                "type": "object",
                                                "properties": {
                                                    "physicalLocation": {
                                                        "type": "object",
                                                        "properties": {
                                                            "region": {
                                                                "type": "object",
                                                                "properties": {
                                                                    "startLine": {
                                                                        "type": "integer",
                                                                        "minimum": 1,
                                                                    },
                                                                    "startColumn": {
                                                                        "type": "integer",
                                                                        "minimum": 1,
                                                                    },
                                                                },
                                                            }
                                                        },
                                                    }
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        }
        jsonschema.validate(doc, schema)


# -- regression: the real tree stays clean under the flow rules ----------------


class TestRealTree:
    def test_core_and_stream_pass_flow_rules(self):
        checker = Checker(
            rules=[get_rule(r) for r in ("CLQ007", "CLQ008", "CLQ009", "CLQ010")]
        )
        violations, files = checker.check_targets([REPO_ROOT / "src" / "repro"])
        assert violations == []
        assert files > 50
