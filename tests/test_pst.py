"""Tests for repro.core.pst — the probabilistic suffix tree."""

import numpy as np
import pytest

from repro.core.pst import ProbabilisticSuffixTree


def count_occurrences(haystack, needle):
    """Reference occurrence count of a segment in one sequence."""
    n, m = len(haystack), len(needle)
    return sum(1 for i in range(n - m + 1) if haystack[i : i + m] == needle)


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alphabet_size": 0},
            {"alphabet_size": 2, "max_depth": 0},
            {"alphabet_size": 2, "significance_threshold": 0},
            {"alphabet_size": 2, "max_nodes": 0},
            {"alphabet_size": 2, "p_min": 0.9},  # 2 * 0.9 >= 1
            {"alphabet_size": 2, "p_min": -0.1},
        ],
    )
    def test_invalid_params(self, kwargs):
        with pytest.raises(ValueError):
            ProbabilisticSuffixTree(**kwargs)

    def test_empty_tree(self):
        pst = ProbabilisticSuffixTree(alphabet_size=3)
        assert pst.node_count == 1
        assert pst.total_symbols == 0
        # No data: uniform fallback.
        assert pst.probability(0, []) == pytest.approx(1 / 3)

    def test_from_sequences(self):
        pst = ProbabilisticSuffixTree.from_sequences(
            [[0, 1], [1, 0]], alphabet_size=2, max_depth=2
        )
        assert pst.sequences_added == 2
        assert pst.total_symbols == 4


class TestCounts:
    def test_root_count_is_total_length(self):
        pst = ProbabilisticSuffixTree(alphabet_size=2, max_depth=3)
        pst.add_sequence([0, 1, 0, 1, 0])
        assert pst.total_symbols == 5

    @pytest.mark.parametrize(
        "segment", [[0], [1], [0, 1], [1, 0], [0, 1, 0], [1, 0, 1]]
    )
    def test_segment_counts_match_reference(self, segment):
        sequence = [0, 1, 0, 1, 0, 0, 1, 1, 0, 1]
        pst = ProbabilisticSuffixTree(alphabet_size=2, max_depth=4)
        pst.add_sequence(sequence)
        assert pst.count_of(segment) == count_occurrences(sequence, segment)

    def test_counts_accumulate_across_sequences(self):
        pst = ProbabilisticSuffixTree(alphabet_size=2, max_depth=2)
        pst.add_sequence([0, 1])
        pst.add_sequence([0, 1])
        assert pst.count_of([0, 1]) == 2
        assert pst.count_of([0]) == 2

    def test_count_of_too_long_segment_is_zero(self):
        pst = ProbabilisticSuffixTree(alphabet_size=2, max_depth=2)
        pst.add_sequence([0, 1, 0, 1])
        assert pst.count_of([0, 1, 0]) == 0

    def test_count_of_absent_segment(self):
        pst = ProbabilisticSuffixTree(alphabet_size=2, max_depth=3)
        pst.add_sequence([0, 0, 0])
        assert pst.count_of([1]) == 0

    def test_empty_sequence_is_noop(self):
        pst = ProbabilisticSuffixTree(alphabet_size=2)
        pst.add_sequence([])
        assert pst.node_count == 1
        assert pst.sequences_added == 0

    def test_out_of_range_symbol_rejected(self):
        pst = ProbabilisticSuffixTree(alphabet_size=2)
        with pytest.raises(ValueError, match="out of range"):
            pst.add_sequence([0, 5])

    def test_rejected_sequence_leaves_tree_untouched(self):
        # CLQ007 regression: validation must happen before any count is
        # touched, so a caller catching the ValueError sees the tree
        # (and the version-keyed caches) exactly as before the call.
        pst = ProbabilisticSuffixTree(alphabet_size=2)
        pst.add_sequence([0, 1, 0])
        before_version = pst._version
        before_root_count = pst.root.count
        before_nodes = pst.node_count
        with pytest.raises(ValueError, match="out of range"):
            pst.add_sequence([0, 1, 7, 0])
        assert pst._version == before_version
        assert pst.root.count == before_root_count
        assert pst.node_count == before_nodes
        assert pst.root.next_counts == {0: 2, 1: 1}

    def test_forget_missing_subtree_does_not_invalidate(self):
        # CLQ007 regression: the no-op early return must not mutate and
        # must not churn the version (which would needlessly rebuild
        # the flat caches); a real detach must bump it.
        pst = ProbabilisticSuffixTree(alphabet_size=3, max_depth=2)
        pst.add_sequence([0, 1, 2, 0, 1])
        before_version = pst._version
        assert pst._forget_subtree(pst.root, 7) == 0
        assert pst._version == before_version
        removed = pst._forget_subtree(pst.root, 0)
        assert removed > 0
        assert pst._version > before_version
        assert pst.node_count == pst.root.subtree_size()


class TestSignificance:
    def test_is_significant(self):
        pst = ProbabilisticSuffixTree(
            alphabet_size=2, max_depth=3, significance_threshold=3
        )
        pst.add_sequence([0, 1, 0, 1, 0, 1, 0])  # '01' occurs 3 times
        assert pst.is_significant([0, 1])
        assert not pst.is_significant([1, 0, 1])
        assert pst.is_significant([])  # root always significant

    def test_significant_node_count(self, simple_pst):
        total = simple_pst.node_count
        significant = simple_pst.significant_node_count()
        assert 1 <= significant <= total


class TestPrediction:
    def test_paper_example_structure(self):
        """Alternating data: P(b|a) should be ~1, P(a|b) ~1."""
        pst = ProbabilisticSuffixTree(
            alphabet_size=2, max_depth=3, significance_threshold=2
        )
        pst.add_sequence([0, 1] * 10)
        assert pst.probability(1, [0]) == pytest.approx(1.0)
        assert pst.probability(0, [1]) == pytest.approx(1.0)

    def test_longest_significant_suffix(self):
        pst = ProbabilisticSuffixTree(
            alphabet_size=2, max_depth=4, significance_threshold=3
        )
        pst.add_sequence([0, 1] * 8)
        # (0,1,0) occurs often => significant; (1,1,0) never occurs.
        assert pst.longest_significant_suffix([1, 1, 0]) == (1, 0) or (
            pst.longest_significant_suffix([1, 1, 0]) == (0,)
        )
        lss = pst.longest_significant_suffix([0, 1, 0])
        assert lss == (0, 1, 0)

    def test_prediction_node_falls_back_to_root(self):
        pst = ProbabilisticSuffixTree(
            alphabet_size=2, max_depth=3, significance_threshold=100
        )
        pst.add_sequence([0, 1, 0, 1])
        node = pst.prediction_node([0, 1])
        assert node is pst.root

    def test_context_longer_than_depth_truncated(self):
        pst = ProbabilisticSuffixTree(
            alphabet_size=2, max_depth=2, significance_threshold=1
        )
        pst.add_sequence([0, 1] * 10)
        long_context = [0, 1] * 7
        short_context = long_context[-2:]
        assert pst.probability(0, long_context) == pst.probability(0, short_context)

    def test_probability_vector_sums_to_one(self, simple_pst):
        vec = simple_pst.probability_vector([0])
        assert vec.shape == (2,)
        assert np.isclose(vec.sum(), 1.0)

    def test_smoothing_lifts_zero_entries(self):
        pst = ProbabilisticSuffixTree(
            alphabet_size=2, max_depth=2, significance_threshold=1, p_min=0.01
        )
        pst.add_sequence([0, 0, 0, 0])
        p = pst.probability(1, [0])
        assert p == pytest.approx(0.01)
        vec = pst.probability_vector([0])
        assert np.isclose(vec.sum(), 1.0)
        assert (vec >= 0.01 - 1e-12).all()


class TestTraversal:
    def test_iter_nodes_labels_unique(self, simple_pst):
        labels = [label for label, _ in simple_pst.iter_nodes()]
        assert len(labels) == len(set(labels)) == simple_pst.node_count

    def test_node_for_matches_iter(self, simple_pst):
        for label, node in simple_pst.iter_nodes():
            assert simple_pst.node_for(label) is node

    def test_depth_bounded(self, simple_pst):
        assert simple_pst.depth() <= simple_pst.max_depth

    def test_child_count_never_exceeds_parent(self, simple_pst):
        for label, node in simple_pst.iter_nodes():
            for child in node.children.values():
                assert child.count <= node.count

    def test_recount_nodes_consistent(self, simple_pst):
        assert simple_pst.recount_nodes() == simple_pst.node_count

    def test_approx_memory(self, simple_pst):
        assert simple_pst.approx_memory_bytes() > 0

    def test_repr(self, simple_pst):
        assert "ProbabilisticSuffixTree" in repr(simple_pst)


class TestNodeBudget:
    def test_budget_enforced_on_insert(self):
        pst = ProbabilisticSuffixTree(
            alphabet_size=4, max_depth=5, significance_threshold=2, max_nodes=30
        )
        rng = np.random.default_rng(0)
        for _ in range(10):
            pst.add_sequence(list(rng.integers(0, 4, size=50)))
        assert pst.node_count <= 30

    def test_unbounded_by_default(self):
        pst = ProbabilisticSuffixTree(alphabet_size=4, max_depth=5)
        rng = np.random.default_rng(0)
        for _ in range(5):
            pst.add_sequence(list(rng.integers(0, 4, size=50)))
        assert pst.node_count > 30


class TestSampling:
    def test_sample_reflects_model(self, rng):
        pst = ProbabilisticSuffixTree(
            alphabet_size=2, max_depth=2, significance_threshold=2
        )
        pst.add_sequence([0, 1] * 20)
        sample = pst.sample(20, rng)
        # strict alternation learned
        assert sample == [0, 1] * 10 or sample == [1, 0] * 10 or all(
            sample[i] != sample[i + 1] for i in range(len(sample) - 1)
        )

    def test_sample_length_zero(self, rng):
        pst = ProbabilisticSuffixTree(alphabet_size=2)
        assert pst.sample(0, rng) == []

    def test_negative_length_rejected(self, rng):
        with pytest.raises(ValueError):
            ProbabilisticSuffixTree(alphabet_size=2).sample(-1, rng)


class TestSerialization:
    def test_roundtrip(self, simple_pst):
        data = simple_pst.to_dict()
        clone = ProbabilisticSuffixTree.from_dict(data)
        assert clone.node_count == simple_pst.node_count
        assert clone.total_symbols == simple_pst.total_symbols
        assert clone.max_depth == simple_pst.max_depth
        for label, node in simple_pst.iter_nodes():
            other = clone.node_for(label)
            assert other is not None
            assert other.count == node.count
            assert other.next_counts == node.next_counts

    def test_roundtrip_preserves_predictions(self, simple_pst):
        clone = ProbabilisticSuffixTree.from_dict(simple_pst.to_dict())
        for context in ([], [0], [1], [0, 1]):
            for symbol in (0, 1):
                assert clone.probability(symbol, context) == pytest.approx(
                    simple_pst.probability(symbol, context)
                )


class TestStats:
    def test_stats_matches_tree_structure(self, simple_pst):
        stats = simple_pst.stats()
        assert stats.node_count == simple_pst.node_count
        assert stats.total_symbols == simple_pst.total_symbols
        assert stats.sequences_added == 1
        assert stats.max_depth <= simple_pst.max_depth
        # depth histogram: index 0 is the root, sums to the node count
        assert stats.depth_histogram[0] == 1
        assert sum(stats.depth_histogram) == stats.node_count
        assert len(stats.depth_histogram) == stats.max_depth + 1
        assert stats.significant_nodes <= stats.node_count
        assert stats.approx_memory_bytes == simple_pst.approx_memory_bytes()
        # occurrence mass counts every node's count once
        assert stats.total_occurrence_mass == sum(
            node.count for _, node in simple_pst.iter_nodes()
        )

    def test_stats_empty_tree(self):
        stats = ProbabilisticSuffixTree(alphabet_size=2).stats()
        assert stats.node_count == 1  # the root
        assert stats.max_depth == 0
        assert stats.depth_histogram == (1,)
        assert stats.total_occurrence_mass == 0
        assert stats.sequences_added == 0

    def test_stats_to_dict_round_trips_json(self, simple_pst):
        import json

        doc = json.loads(json.dumps(simple_pst.stats().to_dict()))
        assert doc["node_count"] == simple_pst.node_count
        assert isinstance(doc["depth_histogram"], list)

    def test_repr_mentions_structure(self, simple_pst):
        text = repr(simple_pst)
        assert "ProbabilisticSuffixTree" in text
        assert f"nodes={simple_pst.node_count}" in text
        assert "sequences=1" in text
        assert f"c={simple_pst.significance_threshold}" in text
