"""Tests for the Telemetry v2 exporters (``repro.obs.export``).

Covers the Prometheus text renderer, the versioned JSON snapshot with
its derived profile view, and the JSONL trace exporter with
trace-context propagation — including stitching of spans measured in
``ScoringPool`` worker processes.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.backends import PstBatchScorer, ScoringPool
from repro.core.pst import ProbabilisticSuffixTree
from repro.obs import (
    TELEMETRY_SCHEMA_V2,
    TRACE_SCHEMA,
    JsonlSpanExporter,
    MetricsRegistry,
    Profiler,
    current_trace_context,
    get_span_exporter,
    new_trace_id,
    prometheus_from_snapshot,
    read_trace,
    record_foreign_span,
    set_span_exporter,
    span,
    telemetry_document,
    to_prometheus_text,
    use_registry,
    use_span_exporter,
    write_prometheus_text,
    write_telemetry_json,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestPrometheusExposition:
    def test_counter_gets_total_suffix(self, registry):
        registry.counter("stream.batches").inc(3)
        text = to_prometheus_text(registry)
        assert "# TYPE repro_stream_batches_total counter" in text
        assert "repro_stream_batches_total 3" in text

    def test_gauge_and_labels(self, registry):
        registry.gauge("baseline.clusters", model="hmm").set(4)
        text = to_prometheus_text(registry)
        assert 'repro_baseline_clusters{model="hmm"} 4' in text

    def test_timer_becomes_summary(self, registry):
        registry.timer("profile.kernel.kadane").record(0.5)
        text = to_prometheus_text(registry)
        assert "# TYPE repro_profile_kernel_kadane_seconds summary" in text
        assert "repro_profile_kernel_kadane_seconds_sum 0.5" in text
        assert "repro_profile_kernel_kadane_seconds_count 1" in text

    def test_histogram_buckets_are_cumulative(self, registry):
        hist = registry.histogram("profile.latency.demo", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)  # overflow bucket
        text = to_prometheus_text(registry)
        assert 'repro_profile_latency_demo_bucket{le="0.1"} 1' in text
        assert 'repro_profile_latency_demo_bucket{le="1"} 2' in text
        assert 'repro_profile_latency_demo_bucket{le="+Inf"} 3' in text
        assert "repro_profile_latency_demo_count 3" in text

    def test_series_exposes_last_value_and_point_count(self, registry):
        series = registry.series("stream.batch.size")
        series.append(5)
        series.append(8)
        text = to_prometheus_text(registry)
        assert "repro_stream_batch_size 8" in text
        assert "repro_stream_batch_size_points 2" in text

    def test_name_sanitization(self):
        text = prometheus_from_snapshot(
            {"weird-name.x": {"type": "counter", "value": 1}}
        )
        assert "repro_weird_name_x_total 1" in text

    def test_empty_snapshot_renders_empty(self):
        assert prometheus_from_snapshot({}) == ""

    def test_write_prometheus_text(self, registry, tmp_path):
        registry.counter("a.b").inc()
        target = write_prometheus_text(tmp_path / "out" / "m.prom", registry)
        assert target.read_text().startswith("# TYPE repro_a_b_total counter")


class TestTelemetryDocument:
    def test_v2_shape(self, registry):
        registry.counter("stream.batches").inc()
        doc = telemetry_document(registry, context={"argv": ["x"]})
        assert doc["schema"] == TELEMETRY_SCHEMA_V2
        assert isinstance(doc["created_unix"], float)
        assert doc["context"] == {"argv": ["x"]}
        assert "stream.batches" in doc["metrics"]
        assert set(doc["profile"]) == {
            "kernels", "caches", "latency", "gauges", "series",
        }

    def test_profile_view_groups_instruments(self, registry):
        prof = Profiler(registry)
        with prof.kernel("kadane"):
            pass
        prof.cache_hit("flat")
        prof.cache_miss("flat")
        prof.cache_hit("flat")
        prof.latency("wal_fsync", 2e-6)
        prof.gauge("model.clusters", 7)
        prof.series("iteration.pst_nodes", 42)
        view = telemetry_document(registry)["profile"]
        assert view["kernels"]["kadane"]["calls"] == 1
        assert view["caches"]["flat"]["hits"] == 2.0
        assert view["caches"]["flat"]["misses"] == 1.0
        assert view["caches"]["flat"]["hit_rate"] == pytest.approx(2 / 3)
        assert view["latency"]["wal_fsync"]["count"] == 1
        assert view["gauges"]["model.clusters"] == 7.0
        assert view["series"]["iteration.pst_nodes"] == [42.0]

    def test_labeled_variants_stay_out_of_profile_view(self, registry):
        registry.counter("profile.cache.flat.hits", shard="a").inc()
        view = telemetry_document(registry)["profile"]
        assert view["caches"] == {}

    def test_write_and_reload(self, registry, tmp_path):
        registry.gauge("stream.clusters").set(2)
        target = write_telemetry_json(
            tmp_path / "t" / "telemetry.json", registry, context={"run": 1}
        )
        doc = json.loads(target.read_text())
        assert doc["schema"] == TELEMETRY_SCHEMA_V2
        assert doc["metrics"]["stream.clusters"]["value"] == 2.0


class TestJsonlSpanExporter:
    def test_header_then_spans(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSpanExporter(path) as exporter, use_span_exporter(exporter):
            with span("phase"):
                with span("inner"):
                    pass
        header, spans = read_trace(path)
        assert header["schema"] == TRACE_SCHEMA
        assert [s["name"] for s in spans] == ["inner", "phase"]  # finish order
        inner, phase = spans
        assert phase["parent"] is None
        assert inner["parent"] == phase["span"]
        assert inner["trace"] == phase["trace"]
        assert inner["wall_seconds"] >= 0.0
        assert exporter.exported == 2

    def test_no_ids_without_exporter(self, tmp_path):
        assert get_span_exporter() is None
        with span("quiet") as live:
            assert live.span_id is None
            assert current_trace_context() is None

    def test_current_trace_context_inside_span(self, tmp_path):
        with JsonlSpanExporter(tmp_path / "t.jsonl") as exporter:
            with use_span_exporter(exporter):
                with span("outer") as outer:
                    context = current_trace_context()
                    assert context == (outer.trace_id, outer.span_id)

    def test_explicit_trace_id_adopted_by_root_span(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlSpanExporter(path) as exporter, use_span_exporter(exporter):
            trace_id = new_trace_id()
            with span("batch", trace_id=trace_id):
                pass
            with span("batch", trace_id=trace_id):
                pass
        _, spans = read_trace(path)
        assert [s["trace"] for s in spans] == [trace_id, trace_id]
        assert spans[0]["span"] != spans[1]["span"]

    def test_record_foreign_span_stitches(self, tmp_path, registry):
        path = tmp_path / "t.jsonl"
        with JsonlSpanExporter(path) as exporter, use_span_exporter(exporter):
            with use_registry(registry):
                with span("parent") as parent:
                    record_foreign_span(
                        "backend.worker_chunk",
                        wall_seconds=0.25,
                        cpu_seconds=0.2,
                        trace_id=parent.trace_id,
                        parent_id=parent.span_id,
                        attrs={"chunk": 0},
                    )
        _, spans = read_trace(path)
        foreign = next(s for s in spans if s["path"] == "backend.worker_chunk")
        parent_record = next(s for s in spans if s["name"] == "parent")
        assert foreign["parent"] == parent_record["span"]
        assert foreign["trace"] == parent_record["trace"]
        assert foreign["wall_seconds"] == 0.25
        assert foreign["attrs"] == {"chunk": 0}
        assert registry.get("span.backend.worker_chunk").count == 1

    def test_set_span_exporter_returns_previous(self, tmp_path):
        with JsonlSpanExporter(tmp_path / "t.jsonl") as exporter:
            assert set_span_exporter(exporter) is None
            assert set_span_exporter(None) is exporter
        assert get_span_exporter() is None

    def test_read_trace_rejects_foreign_file(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "header", "schema": "other/v9"}\n')
        with pytest.raises(ValueError, match="bad header"):
            read_trace(bad)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_trace(empty)

    def test_export_after_close_is_silent(self, tmp_path):
        exporter = JsonlSpanExporter(tmp_path / "t.jsonl")
        exporter.close()
        with use_span_exporter(exporter):
            with span("late"):
                pass  # export hits the closed file and is dropped


class TestPoolFanOutStitching:
    def test_worker_chunk_spans_carry_parent_trace(self, tmp_path):
        pst = ProbabilisticSuffixTree(
            alphabet_size=4, max_depth=3, significance_threshold=1
        )
        rng = np.random.default_rng(5)
        for _ in range(6):
            pst.add_sequence([int(s) for s in rng.integers(0, 4, 30)])
        sequences = [
            [int(s) for s in rng.integers(0, 4, 30)] for _ in range(8)
        ]
        background = np.full(4, 0.25)
        scorer = PstBatchScorer(background)
        path = tmp_path / "pool_trace.jsonl"
        pool = ScoringPool(2)
        try:
            with JsonlSpanExporter(path) as exporter:
                with use_span_exporter(exporter):
                    with span("prescore") as parent:
                        scorer.prescore_matrix([pst], sequences, pool=pool)
                        parent_ids = (parent.trace_id, parent.span_id)
        finally:
            pool.close()
        _, spans = read_trace(path)
        chunks = [s for s in spans if s["path"] == "backend.worker_chunk"]
        assert chunks, "no worker-chunk spans exported"
        for chunk in chunks:
            assert chunk["trace"] == parent_ids[0]
            assert chunk["parent"] == parent_ids[1]
            assert chunk["attrs"]["rows"] >= 1
            assert chunk["cpu_seconds"] is not None
