"""Tests for repro.core.consolidation."""

import pytest

from repro.core.cluster import Cluster, Membership
from repro.core.consolidation import consolidate, overlap_fraction
from repro.core.pst import ProbabilisticSuffixTree


def cluster_with(cluster_id, members):
    pst = ProbabilisticSuffixTree(alphabet_size=2, max_depth=2)
    pst.add_sequence([0, 1])
    cl = Cluster(cluster_id=cluster_id, pst=pst, seed_index=members[0] if members else 0)
    for index in members:
        cl.set_member(Membership(index, 1.0, 0, 1))
    return cl


class TestAscendingPass:
    def test_small_covered_cluster_removed(self):
        big = cluster_with(0, list(range(10)))
        small = cluster_with(1, [2, 3])  # fully covered by big
        retained, removed = consolidate([big, small], min_unique_members=2)
        assert [c.cluster_id for c in retained] == [0]
        assert [c.cluster_id for c in removed] == [1]

    def test_distinct_clusters_retained(self):
        a = cluster_with(0, [0, 1, 2])
        b = cluster_with(1, [3, 4, 5])
        retained, removed = consolidate([a, b], min_unique_members=2)
        assert len(retained) == 2
        assert removed == []

    def test_empty_cluster_always_removed(self):
        a = cluster_with(0, [0, 1, 2])
        empty = cluster_with(1, [])
        retained, removed = consolidate([a, empty], min_unique_members=0)
        assert [c.cluster_id for c in retained] == [0]
        assert [c.cluster_id for c in removed] == [1]

    def test_identical_clusters_keep_one(self):
        a = cluster_with(0, [0, 1, 2, 3])
        b = cluster_with(1, [0, 1, 2, 3])
        retained, removed = consolidate([a, b], min_unique_members=2)
        assert len(retained) == 1
        assert len(removed) == 1

    def test_removal_not_cascading(self):
        """Removing one small cluster must not resurrect coverage for
        another (uniqueness is checked against retained clusters)."""
        big = cluster_with(0, list(range(8)))
        small1 = cluster_with(1, [0, 1])
        small2 = cluster_with(2, [0, 1])
        retained, removed = consolidate(
            [big, small1, small2], min_unique_members=2
        )
        assert [c.cluster_id for c in retained] == [0]
        assert {c.cluster_id for c in removed} == {1, 2}

    def test_min_unique_zero_keeps_nonempty(self):
        a = cluster_with(0, [0, 1])
        b = cluster_with(1, [0, 1])
        retained, _ = consolidate([a, b], min_unique_members=0, dissolve_covered=False)
        assert len(retained) == 2

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            consolidate([cluster_with(0, [1])], min_unique_members=-1)


class TestDissolvePass:
    def test_mixture_cluster_dissolved(self):
        """A mega-cluster covering the union of two pure clusters loses
        to them when dissolve_covered is on."""
        pure_a = cluster_with(0, [0, 1, 2, 3])
        pure_b = cluster_with(1, [4, 5, 6, 7])
        mixture = cluster_with(2, list(range(8)))
        retained, removed = consolidate(
            [pure_a, pure_b, mixture], min_unique_members=2, dissolve_covered=True
        )
        assert {c.cluster_id for c in retained} == {0, 1}
        assert {c.cluster_id for c in removed} == {2}

    def test_mixture_survives_without_dissolve(self):
        """The paper's ascending-only pass keeps the mixture and kills
        the pure clusters instead — the failure mode DESIGN.md documents."""
        pure_a = cluster_with(0, [0, 1, 2, 3])
        pure_b = cluster_with(1, [4, 5, 6, 7])
        mixture = cluster_with(2, list(range(8)))
        retained, _ = consolidate(
            [pure_a, pure_b, mixture], min_unique_members=2, dissolve_covered=False
        )
        assert [c.cluster_id for c in retained] == [2]

    def test_last_cluster_never_dissolved(self):
        only = cluster_with(0, [0, 1])
        retained, removed = consolidate([only], min_unique_members=5)
        # Removed by the ascending pass? No other cluster covers it, so
        # uniqueness is its full size; 2 < 5 means it IS removed there.
        # With a single cluster and min_unique below its size it stays.
        retained2, removed2 = consolidate([only], min_unique_members=2)
        assert [c.cluster_id for c in retained2] == [0]

    def test_partial_overlap_survives(self):
        a = cluster_with(0, [0, 1, 2, 3, 4])
        b = cluster_with(1, [3, 4, 5, 6, 7])
        retained, removed = consolidate([a, b], min_unique_members=3)
        assert len(retained) == 2


class TestOverlapFraction:
    def test_disjoint(self):
        a = cluster_with(0, [0, 1])
        b = cluster_with(1, [2, 3])
        assert overlap_fraction(a, b) == 0.0

    def test_identical(self):
        a = cluster_with(0, [0, 1])
        b = cluster_with(1, [0, 1])
        assert overlap_fraction(a, b) == 1.0

    def test_partial(self):
        a = cluster_with(0, [0, 1, 2])
        b = cluster_with(1, [2, 3])
        assert overlap_fraction(a, b) == pytest.approx(0.25)

    def test_both_empty(self):
        assert overlap_fraction(cluster_with(0, []), cluster_with(1, [])) == 0.0
