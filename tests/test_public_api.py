"""Public API surface tests: everything README documents must import."""

import importlib

import pytest


def test_top_level_exports():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.{name} missing"
    assert repro.__version__


def test_core_exports():
    from repro import core

    for name in core.__all__:
        assert hasattr(core, name), f"repro.core.{name} missing"


def test_sequences_exports():
    from repro import sequences

    for name in sequences.__all__:
        assert hasattr(sequences, name)


def test_baselines_exports():
    from repro import baselines

    for name in baselines.__all__:
        assert hasattr(baselines, name)


def test_evaluation_exports():
    from repro import evaluation

    for name in evaluation.__all__:
        assert hasattr(evaluation, name)


def test_datasets_exports():
    from repro import datasets

    for name in datasets.__all__:
        assert hasattr(datasets, name)


@pytest.mark.parametrize(
    "module",
    [
        "repro.experiments.table2_model_comparison",
        "repro.experiments.table3_protein_families",
        "repro.experiments.table4_languages",
        "repro.experiments.table5_initial_k",
        "repro.experiments.table6_initial_t",
        "repro.experiments.fig3_similarity_histogram",
        "repro.experiments.fig4_pst_size",
        "repro.experiments.fig5_sample_size",
        "repro.experiments.fig6_scalability",
        "repro.experiments.ordering_policies",
        "repro.experiments.outlier_robustness",
        "repro.experiments.ablation_modes",
        "repro.experiments.ablation_pruning",
        "repro.experiments.ablation_smoothing",
        "repro.cli",
        "repro.__main__",
    ],
)
def test_modules_importable(module):
    importlib.import_module(module)


def test_docstrings_present():
    """Every public module and class carries a docstring."""
    import repro
    from repro.core import cluseq, pst, similarity, threshold
    from repro.sequences import alphabet, database

    for module in (repro, cluseq, pst, similarity, threshold, alphabet, database):
        assert module.__doc__, f"{module.__name__} missing docstring"

    from repro import CLUSEQ, Cluster, CluseqParams, ProbabilisticSuffixTree

    for cls in (CLUSEQ, Cluster, CluseqParams, ProbabilisticSuffixTree):
        assert cls.__doc__, f"{cls.__name__} missing docstring"
