"""Statistical consistency of the PST as an estimator.

A PST fitted on data sampled from a known Markov source must recover
that source's conditional distributions (for significant contexts),
and sampling from the fitted PST must reproduce the source's
statistics. These tests close the generative↔discriminative loop the
synthetic experiments rely on.
"""

import numpy as np
import pytest

from repro.core.pst import ProbabilisticSuffixTree
from repro.sequences.markov import MarkovSource, random_markov_source


@pytest.fixture
def sharp_source():
    """An order-1 source with distinctive, non-uniform rows."""
    return MarkovSource(
        3,
        order=1,
        transitions={
            (): np.array([0.5, 0.3, 0.2]),
            (0,): np.array([0.1, 0.8, 0.1]),
            (1,): np.array([0.7, 0.1, 0.2]),
            (2,): np.array([0.2, 0.2, 0.6]),
        },
    )


def fit_pst(source, rng, sequences=30, length=200, c=30):
    pst = ProbabilisticSuffixTree(
        alphabet_size=source.alphabet_size,
        max_depth=4,
        significance_threshold=c,
    )
    for seq in source.sample_many(sequences, length, rng, length_jitter=0.0):
        pst.add_sequence(seq)
    return pst


class TestEstimationConsistency:
    def test_order1_conditionals_recovered(self, sharp_source, rng):
        pst = fit_pst(sharp_source, rng)
        for context in range(3):
            truth = sharp_source.distribution_for([context])
            estimated = pst.probability_vector([context])
            assert np.abs(estimated - truth).max() < 0.05, (
                f"context {context}: {estimated} vs {truth}"
            )

    def test_estimates_improve_with_data(self, sharp_source):
        """More training data → closer conditional estimates."""
        def total_error(sequences):
            rng = np.random.default_rng(0)
            pst = fit_pst(sharp_source, rng, sequences=sequences)
            return sum(
                np.abs(
                    pst.probability_vector([context])
                    - sharp_source.distribution_for([context])
                ).sum()
                for context in range(3)
            )

        small = total_error(3)
        large = total_error(60)
        assert large < small

    def test_deeper_contexts_fall_back_when_insignificant(
        self, sharp_source, rng
    ):
        """For an order-1 source, order-3 contexts carry no extra
        information, so prediction through them still matches the
        order-1 truth."""
        pst = fit_pst(sharp_source, rng, sequences=40)
        for context in ([0, 1, 2], [2, 2, 0], [1, 0, 1]):
            truth = sharp_source.distribution_for(context)
            estimated = pst.probability_vector(context)
            assert np.abs(estimated - truth).max() < 0.08


class TestSamplingConsistency:
    def test_sampled_statistics_match_source(self, sharp_source, rng):
        """Sample from the fitted PST and check symbol-pair statistics
        against the original source."""
        pst = fit_pst(sharp_source, rng)
        sample = pst.sample(4000, rng)
        # Empirical P(1 | 0) from the sample should be near 0.8.
        after_zero = [
            sample[i + 1] for i in range(len(sample) - 1) if sample[i] == 0
        ]
        p_1_given_0 = after_zero.count(1) / max(len(after_zero), 1)
        assert abs(p_1_given_0 - 0.8) < 0.08

    def test_refit_roundtrip(self, rng):
        """Fitting a second PST on samples of the first recovers the
        same significant conditional structure."""
        source = random_markov_source(4, order=1, rng=rng, concentration=0.3)
        first = fit_pst(source, rng, sequences=40, length=250)
        second = ProbabilisticSuffixTree(
            alphabet_size=4, max_depth=4, significance_threshold=30
        )
        for _ in range(40):
            second.add_sequence(first.sample(250, rng))
        for context in range(4):
            a = first.probability_vector([context])
            b = second.probability_vector([context])
            assert np.abs(a - b).max() < 0.08
