"""Differential properties of the sharded engine.

Three contracts, each checked over seeded fuzz (drifting Markov
sources with varying seeds and drift points):

1. **shards=1 degenerates exactly.** A single-shard engine with the
   hash router dispatches every global batch whole to shard 0, so its
   shard must be bit-identical to a plain :class:`StreamingCluseq`
   fed the same stream — clusters, pool, assignments, counters.
2. **Runner invariance.** The multi-process runner is a transport,
   not a semantics change: inprocess and process runs of the same
   stream produce identical shard states. Commands are dispatched in
   shard-index order with one outstanding request per shard, so OS
   process scheduling cannot reorder what any shard observes.
3. **Repeat-run determinism.** Any configuration (including the
   adaptive PST router) run twice over the same stream lands on the
   same state, and recovery from a durable run is stable under
   repeated recover calls.
"""

import json
from dataclasses import asdict

import pytest

from repro.core.persistence import result_to_dict
from repro.shard import ShardConfig, ShardedStreamingCluseq
from repro.stream import (
    DecayPolicy,
    StreamConfig,
    StreamingCluseq,
    drifting_markov_stream,
)

ALPHABET_SIZE = 8

FUZZ_SEEDS = [(11, 40), (23, 30), (47, 55)]


def make_stream(seed, drift_at):
    return drifting_markov_stream(
        90,
        drift_at,
        alphabet_size=ALPHABET_SIZE,
        mean_length=30,
        concentration=0.05,
        seed=seed,
    )


def make_stream_config(**kwargs):
    kwargs.setdefault("batch_size", 10)
    kwargs.setdefault("pool_size", 64)
    kwargs.setdefault("reseed_every", 2)
    kwargs.setdefault("reseed_k", 2)
    kwargs.setdefault("reseed_min_pool", 6)
    kwargs.setdefault("consolidate_every", 8)
    kwargs.setdefault("adjust_every", 5)
    kwargs.setdefault("decay", DecayPolicy(factor=0.9, every_batches=6))
    kwargs.setdefault("checkpoint_every", 3)
    kwargs.setdefault("seed", 3)
    return StreamConfig(**kwargs)


def make_sharded(shards, state_dir=None, runner="inprocess", router="hash"):
    config = ShardConfig(
        shards=shards,
        router=router,
        runner=runner,
        consolidate_every=4,
        merge_threshold=0.8,
        stream=make_stream_config(),
    )
    return ShardedStreamingCluseq.cold_start(
        alphabet_size=ALPHABET_SIZE,
        similarity_threshold=10.0,
        significance_threshold=3,
        max_depth=4,
        config=config,
        state_dir=state_dir,
    )


def sharded_digest(engine):
    return json.dumps(engine.shard_states(), sort_keys=True)


def run_sharded(shards, stream, state_dir=None, runner="inprocess",
                router="hash"):
    engine = make_sharded(shards, state_dir, runner, router)
    for seq in stream.sequences:
        engine.ingest(seq)
    engine.flush()
    if state_dir is not None:
        engine.checkpoint()
    digest = sharded_digest(engine)
    engine.close()
    return digest


def plain_engine_digest(stream):
    """A plain streaming engine's state, shaped like a shard digest."""
    engine = StreamingCluseq.cold_start(
        alphabet_size=ALPHABET_SIZE,
        similarity_threshold=10.0,
        significance_threshold=3,
        max_depth=4,
        config=make_stream_config(),
    )
    engine.run(stream.sequences)
    # Mirror shard_state_digest: raw dataclass fields, checkpoint
    # cadence excluded (it differs across crash schedules by design).
    stats = asdict(engine.stats())
    stats.pop("checkpoints_written")
    return json.dumps(
        [
            {
                "result": result_to_dict(engine.result, engine.alphabet),
                "pool": engine.pool.to_list(),
                "stats": stats,
                # A lone shard never receives a cross-shard plan.
                "last_round": -1,
            }
        ],
        sort_keys=True,
    )


class TestSingleShardDegeneration:
    @pytest.mark.parametrize(("seed", "drift_at"), FUZZ_SEEDS)
    def test_one_shard_is_bit_identical_to_plain_engine(
        self, seed, drift_at
    ):
        stream = make_stream(seed, drift_at)
        assert run_sharded(1, stream) == plain_engine_digest(stream)

    def test_one_shard_durable_matches_plain_engine(self, tmp_path):
        stream = make_stream(*FUZZ_SEEDS[0])
        digest = run_sharded(1, stream, state_dir=tmp_path / "state")
        assert digest == plain_engine_digest(stream)


class TestRunnerInvariance:
    @pytest.mark.parametrize(("seed", "drift_at"), FUZZ_SEEDS)
    def test_process_runner_matches_inprocess(self, seed, drift_at):
        stream = make_stream(seed, drift_at)
        assert run_sharded(2, stream, runner="process") == run_sharded(
            2, stream, runner="inprocess"
        )

    def test_cross_runner_resume(self, tmp_path):
        """A state dir written in-process resumes multi-process, and
        the recovered state matches the in-process recovery exactly."""
        stream = make_stream(*FUZZ_SEEDS[0])
        state_dir = tmp_path / "state"
        run_sharded(2, stream, state_dir=state_dir)
        inproc = ShardedStreamingCluseq.recover(state_dir)
        inproc_digest = sharded_digest(inproc)
        inproc.close()
        proc = ShardedStreamingCluseq.recover(state_dir, runner="process")
        proc_digest = sharded_digest(proc)
        proc.close()
        assert proc_digest == inproc_digest


class TestRepeatRunDeterminism:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_identical_runs_land_on_identical_state(self, shards):
        stream = make_stream(*FUZZ_SEEDS[1])
        assert run_sharded(shards, stream) == run_sharded(shards, stream)

    def test_pst_router_is_deterministic(self):
        stream = make_stream(*FUZZ_SEEDS[2])
        first = run_sharded(2, stream, router="pst")
        assert first == run_sharded(2, stream, router="pst")
        # The adaptive router must actually be exercised, not silently
        # fall back to hashing forever: with consolidation rounds the
        # snapshot becomes non-empty, which is what its state asserts.

    def test_double_recovery_is_stable(self, tmp_path):
        stream = make_stream(*FUZZ_SEEDS[0])
        state_dir = tmp_path / "state"
        durable = run_sharded(2, stream, state_dir=state_dir)
        once = ShardedStreamingCluseq.recover(state_dir)
        once_digest = sharded_digest(once)
        once.close()
        twice = ShardedStreamingCluseq.recover(state_dir)
        twice_digest = sharded_digest(twice)
        twice.close()
        assert once_digest == durable
        assert twice_digest == durable
