"""End-to-end tests for the instrumentation layer.

These drive real ``CLUSEQ`` runs (and the CLI) with a live metrics
registry and assert that the pipeline emits the documented telemetry:
per-phase timers, per-iteration series, PST size metrics, iteration
hooks, and the zero-overhead default.
"""

import json

import pytest

from repro.core.cluseq import CLUSEQ, CluseqParams, IterationSnapshot
from repro.obs import NULL_REGISTRY, MetricsRegistry, get_registry, use_registry


PARAMS = dict(
    k=2,
    significance_threshold=2,
    min_unique_members=3,
    max_iterations=20,
    seed=1,
)


@pytest.fixture(autouse=True)
def _registry_isolation():
    yield
    # no test may leave a registry active
    assert get_registry() is NULL_REGISTRY


class TestRunTelemetry:
    def test_expected_metric_families_emitted(self, toy_db):
        registry = MetricsRegistry()
        with use_registry(registry):
            result = CLUSEQ(CluseqParams(**PARAMS)).fit(toy_db)
        assert result.num_clusters >= 1

        # per-phase span timers, aggregated across iterations
        for phase in ("seed", "recluster", "consolidate"):
            timer = registry.get(f"span.cluseq.{phase}")
            assert timer is not None, f"missing span.cluseq.{phase}"
            assert timer.count == len(result.history)
            assert timer.total_seconds >= 0.0
        run_timer = registry.get("span.cluseq")
        assert run_timer.count == 1
        assert run_timer.total_seconds >= max(
            registry.get(f"span.cluseq.{p}").total_seconds
            for p in ("seed", "recluster", "consolidate")
        )

        # per-iteration trajectories: one point per history entry
        iterations = len(result.history)
        for series_name in (
            "cluseq.iteration.clusters",
            "cluseq.iteration.unclustered",
            "cluseq.iteration.log_threshold",
            "cluseq.iteration.membership_changes",
            "cluseq.iteration.pst_nodes",
        ):
            series = registry.get(series_name)
            assert series is not None, f"missing {series_name}"
            assert len(series) == iterations

        # the recorded trajectory matches the run history
        assert registry.get("cluseq.iteration.clusters").values == [
            float(s.clusters_after) for s in result.history
        ]

        # end-of-run gauges
        assert registry.get("cluseq.iterations").value == iterations
        assert registry.get("cluseq.final_clusters").value == result.num_clusters
        assert registry.get("cluseq.converged").value == float(result.converged)

        # PST size metrics
        assert registry.get("cluseq.final_pst_nodes").value > 0
        depth_hist = registry.get("pst.final_depth")
        nodes_hist = registry.get("pst.final_nodes")
        assert depth_hist.count == result.num_clusters
        assert nodes_hist.count == result.num_clusters

        # work counters from the similarity hot path
        assert registry.get("similarity.calls").value > 0
        assert registry.get("similarity.dp_cells").value > 0
        assert registry.get("similarity.segment_length").count > 0

        # seeding/consolidation counters
        assert registry.get("seeding.selections").value >= 1
        assert registry.get("consolidation.passes").value == iterations

    def test_registry_argument_without_global_activation(self, toy_db):
        """Passing ``registry=`` to CLUSEQ collects into it without the
        caller ever touching the global registry."""
        registry = MetricsRegistry()
        engine = CLUSEQ(CluseqParams(**PARAMS), registry=registry)
        result = engine.fit(toy_db)
        assert get_registry() is NULL_REGISTRY
        assert registry.get("span.cluseq").count == 1
        assert registry.get("cluseq.iterations").value == len(result.history)

    def test_default_run_has_zero_telemetry_footprint(self, toy_db):
        """With observability disabled (the default) a run must leave
        the global no-op registry empty — nothing collected anywhere."""
        result = CLUSEQ(CluseqParams(**PARAMS)).fit(toy_db)
        assert result.num_clusters >= 1
        assert get_registry() is NULL_REGISTRY
        assert len(NULL_REGISTRY) == 0
        assert NULL_REGISTRY.snapshot() == {}


class TestIterationHooks:
    def test_one_snapshot_per_iteration(self, toy_db):
        snapshots = []
        engine = CLUSEQ(CluseqParams(**PARAMS), hooks=[snapshots.append])
        result = engine.fit(toy_db)

        assert len(snapshots) == len(result.history)
        for snap, stats in zip(snapshots, result.history):
            assert isinstance(snap, IterationSnapshot)
            assert snap.stats == stats
            assert len(snap.cluster_sizes) == stats.clusters_after
            assert set(snap.pst_node_counts) == set(snap.cluster_sizes)
            assert snap.total_pst_nodes == sum(snap.pst_node_counts.values())
        # the final snapshot matches the result
        assert len(snapshots[-1].cluster_sizes) == result.num_clusters
        assert snapshots[-1].log_threshold == result.final_log_threshold

    def test_add_hook_chains(self, toy_db):
        seen = []
        engine = CLUSEQ(CluseqParams(**PARAMS))
        assert engine.add_hook(seen.append) is engine
        engine.fit(toy_db)
        assert seen  # fired without any registry active

    def test_hooks_fire_without_registry(self, toy_db):
        count = []
        CLUSEQ(CluseqParams(**PARAMS), hooks=[lambda s: count.append(1)]).fit(
            toy_db
        )
        assert get_registry() is NULL_REGISTRY
        assert count


class TestExitPathHistory:
    """Satellite: the final iteration's stats must be complete on both
    exit paths (stability and the max_iterations cutoff)."""

    def test_stability_exit_records_final_iteration(self, toy_db):
        result = CLUSEQ(CluseqParams(**PARAMS)).fit(toy_db)
        assert result.converged
        assert result.history, "history must never be empty"
        last = result.history[-1]
        assert last.stable
        assert all(not s.stable for s in result.history[:-1])
        # the terminating iteration's stats are fully populated
        # (membership_changes may be nonzero even when stable: the
        # stability rule compares post-consolidation snapshots, so
        # transient joins to immediately-dismissed clusters count as
        # changes without breaking stability)
        assert last.elapsed_seconds > 0.0
        assert last.membership_changes >= 0
        # iterations are 0-indexed, one history entry per iteration
        assert last.iteration == len(result.history) - 1
        assert [s.iteration for s in result.history] == list(
            range(len(result.history))
        )

    def test_max_iterations_exit_records_final_iteration(self, toy_db):
        params = dict(PARAMS)
        params["max_iterations"] = 1
        result = CLUSEQ(CluseqParams(**params)).fit(toy_db)
        assert not result.converged
        assert len(result.history) == 1
        last = result.history[-1]
        assert not last.stable
        assert last.elapsed_seconds > 0.0

    def test_every_iteration_has_elapsed_time(self, toy_db):
        result = CLUSEQ(CluseqParams(**PARAMS)).fit(toy_db)
        assert all(s.elapsed_seconds > 0.0 for s in result.history)
        # elapsed times are per-iteration, not cumulative: their sum
        # cannot exceed the whole run's wall time
        assert sum(s.elapsed_seconds for s in result.history) <= (
            result.elapsed_seconds + 1e-6
        )

    def test_summary_reports_exit_reason(self, toy_db):
        result = CLUSEQ(CluseqParams(**PARAMS)).fit(toy_db)
        assert "converged" in result.summary()
        assert "last iter" in result.summary()
        params = dict(PARAMS)
        params["max_iterations"] = 1
        cutoff = CLUSEQ(CluseqParams(**params)).fit(toy_db)
        assert "max_iterations" in cutoff.summary()


class TestCliTelemetry:
    def test_metrics_out_writes_schema_document(self, tmp_path, capsys):
        from repro.cli import main
        from repro.evaluation.reporting import TELEMETRY_SCHEMA
        from repro.sequences.generators import generate_two_cluster_toy
        from repro.sequences.io import write_labelled_text

        db = generate_two_cluster_toy(size_per_cluster=15, length=30, seed=7)
        data = tmp_path / "toy.txt"
        write_labelled_text(db, data)
        out = tmp_path / "telemetry.json"

        code = main(
            [
                "--metrics-out",
                str(out),
                "cluster",
                str(data),
                "-k",
                "2",
                "-c",
                "2",
            ]
        )
        assert code == 0
        assert get_registry() is NULL_REGISTRY

        document = json.loads(out.read_text())
        assert document["schema"] == TELEMETRY_SCHEMA
        assert document["context"]["argv"][0] == "--metrics-out"
        metrics = document["metrics"]
        # per-phase timers
        assert metrics["span.cluseq"]["type"] == "timer"
        assert metrics["span.cluseq.recluster"]["count"] >= 1
        # per-iteration gauntlet: cluster/threshold trajectories
        assert metrics["cluseq.iteration.clusters"]["type"] == "series"
        assert len(metrics["cluseq.iteration.log_threshold"]["values"]) >= 1
        # PST size metrics
        assert metrics["cluseq.final_pst_nodes"]["value"] > 0
        assert metrics["pst.final_depth"]["type"] == "histogram"
        assert "telemetry written to" in capsys.readouterr().err
