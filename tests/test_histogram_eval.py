"""Tests for repro.evaluation.histogram — similarity-distribution views."""

import numpy as np

from repro.core.cluseq import cluster_sequences
from repro.evaluation.histogram import (
    histogram_series,
    similarity_distribution,
    valley_comparison,
)


def fitted(toy_db):
    return cluster_sequences(
        toy_db,
        k=2,
        significance_threshold=2,
        min_unique_members=3,
        max_iterations=10,
        seed=1,
    )


class TestSimilarityDistribution:
    def test_covers_all_pairs(self, toy_db):
        result = fitted(toy_db)
        dist = similarity_distribution(result, toy_db)
        expected = len(toy_db) * result.num_clusters
        assert dist.log_similarities.shape == (expected,)
        assert dist.member_mask.shape == (expected,)

    def test_member_mask_counts(self, toy_db):
        result = fitted(toy_db)
        dist = similarity_distribution(result, toy_db)
        total_memberships = sum(cl.size for cl in result.clusters)
        assert int(dist.member_mask.sum()) == total_memberships

    def test_members_score_higher_on_average(self, toy_db):
        result = fitted(toy_db)
        dist = similarity_distribution(result, toy_db)
        if dist.member_values.size and dist.non_member_values.size:
            assert dist.member_values.mean() > dist.non_member_values.mean()

    def test_separation_margin(self, toy_db):
        result = fitted(toy_db)
        dist = similarity_distribution(result, toy_db)
        margin = dist.separation_margin()
        assert margin is None or np.isfinite(margin)


class TestHistogramSeries:
    def test_series_shape(self, rng):
        values = rng.normal(0, 1, size=200).tolist()
        series = histogram_series(values, buckets=20)
        assert len(series) == 20
        assert sum(count for _, count in series) > 0
        centers = [x for x, _ in series]
        assert centers == sorted(centers)


class TestValleyComparison:
    def test_all_methods_reported(self, rng):
        low = rng.normal(1, 0.5, size=300)
        high = rng.normal(20, 2, size=100)
        values = np.concatenate([low, high]).tolist()
        comparison = valley_comparison(values)
        assert set(comparison) == {"regression", "otsu"}
        for value in comparison.values():
            assert value is None or np.isfinite(value)

    def test_insufficient_data(self):
        comparison = valley_comparison([1.0, 2.0])
        assert all(v is None for v in comparison.values())
