"""Deterministic crash recovery for the streaming engine.

The contract under test: with a state directory (write-ahead journal +
periodic checkpoints), an engine killed at *any* point mid-stream can
be rebuilt by ``StreamingCluseq.recover`` and — after ingesting the
rest of the stream — reach state bit-identical to an engine that ran
uninterrupted. Everything the engine does is a deterministic function
of (state, batch sequence), so replaying the journal suffix from the
last checkpoint reproduces the exact pre-crash state.
"""

import json

import pytest

from repro.core.persistence import result_to_dict
from repro.stream import (
    DecayPolicy,
    StreamConfig,
    StreamingCluseq,
    drifting_markov_stream,
    journal_path,
)

ALPHABET_SIZE = 8


@pytest.fixture(scope="module")
def stream():
    return drifting_markov_stream(
        400, 200, alphabet_size=ALPHABET_SIZE, concentration=0.05, seed=11
    )


def make_config(**kwargs):
    kwargs.setdefault("batch_size", 20)
    kwargs.setdefault("pool_size", 128)
    kwargs.setdefault("reseed_every", 2)
    kwargs.setdefault("reseed_k", 2)
    kwargs.setdefault("reseed_min_pool", 6)
    kwargs.setdefault("consolidate_every", 8)
    kwargs.setdefault("adjust_every", 5)
    kwargs.setdefault("decay", DecayPolicy(factor=0.9, every_batches=6))
    kwargs.setdefault("checkpoint_every", 4)
    kwargs.setdefault("seed", 3)
    return StreamConfig(**kwargs)


def make_engine(config, state_dir=None):
    return StreamingCluseq.cold_start(
        alphabet_size=ALPHABET_SIZE,
        similarity_threshold=10.0,
        significance_threshold=3,
        max_depth=4,
        config=config,
        state_dir=state_dir,
    )


def full_state(engine):
    """Everything that must match bit-for-bit, JSON-normalized."""
    return json.dumps(
        {
            "result": result_to_dict(engine.result),
            "pool": engine.pool.to_list(),
            "stats": {
                key: value
                for key, value in engine.stats().to_dict().items()
                # Checkpoint cadence differs between an interrupted and
                # an uninterrupted run by construction; everything else
                # must agree exactly.
                if key != "checkpoints_written"
            },
        },
        sort_keys=True,
    )


class TestCrashRecovery:
    @pytest.mark.parametrize("crash_after", [37, 170, 391])
    def test_recovery_is_bit_identical(self, stream, tmp_path, crash_after):
        config = make_config()

        # Reference: one engine consumes the whole stream, no crash.
        reference = make_engine(config, state_dir=tmp_path / "ref")
        with reference:
            reference.run(stream.sequences)
        expected = full_state(reference)

        # Crashed run: feed `crash_after` sequences, then abandon the
        # engine without close()/checkpoint() — as a SIGKILL would.
        state_dir = tmp_path / "crashed"
        victim = make_engine(config, state_dir=state_dir)
        for seq in stream.sequences[:crash_after]:
            victim.ingest(seq)
        del victim  # crash: buffered partial batch is lost, journal survives

        # Journal only holds the fully-ingested batches.
        recovered = StreamingCluseq.recover(state_dir)
        applied = recovered.sequences_ingested
        assert applied == (crash_after // config.batch_size) * config.batch_size
        with recovered:
            recovered.run(stream.sequences[applied:])
        assert full_state(recovered) == expected

    def test_recovery_after_torn_journal_line(self, stream, tmp_path):
        config = make_config()
        state_dir = tmp_path / "state"
        victim = make_engine(config, state_dir=state_dir)
        for seq in stream.sequences[:100]:
            victim.ingest(seq)
        # Simulate dying mid-append: garbage half-record at the tail.
        with open(journal_path(state_dir), "a", encoding="utf-8") as handle:
            handle.write('{"type": "batch", "n": 99, "sequences": [[1,')
        del victim
        recovered = StreamingCluseq.recover(state_dir)
        assert recovered.sequences_ingested == 100
        assert recovered.batches_ingested == 5

    def test_double_recovery_is_stable(self, stream, tmp_path):
        config = make_config()
        state_dir = tmp_path / "state"
        victim = make_engine(config, state_dir=state_dir)
        for seq in stream.sequences[:140]:
            victim.ingest(seq)
        del victim
        first = StreamingCluseq.recover(state_dir)
        second = StreamingCluseq.recover(state_dir)
        assert full_state(first) == full_state(second)

    def test_recovered_engine_keeps_journaling(self, stream, tmp_path):
        config = make_config()
        state_dir = tmp_path / "state"
        victim = make_engine(config, state_dir=state_dir)
        for seq in stream.sequences[:60]:
            victim.ingest(seq)
        del victim
        recovered = StreamingCluseq.recover(state_dir)
        with recovered:
            recovered.run(stream.sequences[60:120])
        again = StreamingCluseq.recover(state_dir)
        assert full_state(again) == full_state(recovered)

    def test_missing_checkpoint_raises(self, tmp_path):
        from repro.stream import CheckpointError

        with pytest.raises(CheckpointError, match="no checkpoint"):
            StreamingCluseq.recover(tmp_path)
