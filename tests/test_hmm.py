"""Tests for repro.baselines.hmm."""

import math

import numpy as np
import pytest

from repro.baselines.hmm import DiscreteHMM, HMMClusterer
from repro.sequences.database import SequenceDatabase


class TestConstruction:
    def test_parameters_are_distributions(self):
        model = DiscreteHMM(3, 4, seed=0)
        assert np.isclose(model.initial.sum(), 1.0)
        assert np.allclose(model.transition.sum(axis=1), 1.0)
        assert np.allclose(model.emission.sum(axis=1), 1.0)
        assert (model.initial > 0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            DiscreteHMM(0, 2)
        with pytest.raises(ValueError):
            DiscreteHMM(2, 0)

    def test_seeded_reproducibility(self):
        a, b = DiscreteHMM(3, 4, seed=9), DiscreteHMM(3, 4, seed=9)
        assert np.allclose(a.emission, b.emission)


class TestLikelihood:
    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            DiscreteHMM(2, 2).log_likelihood([])

    def test_loglikelihood_negative(self):
        model = DiscreteHMM(2, 3, seed=1)
        assert model.log_likelihood([0, 1, 2, 0]) < 0

    def test_sums_over_symbols_to_one(self):
        """For a single-position sequence, likelihoods over symbols sum
        to 1 (law of total probability)."""
        model = DiscreteHMM(3, 4, seed=2)
        total = sum(math.exp(model.log_likelihood([s])) for s in range(4))
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_per_symbol_normalisation(self):
        model = DiscreteHMM(2, 2, seed=0)
        seq = [0, 1] * 10
        assert model.per_symbol_log_likelihood(seq) == pytest.approx(
            model.log_likelihood(seq) / len(seq)
        )

    def test_two_position_total_probability(self):
        model = DiscreteHMM(2, 3, seed=3)
        total = sum(
            math.exp(model.log_likelihood([a, b]))
            for a in range(3)
            for b in range(3)
        )
        assert total == pytest.approx(1.0, abs=1e-8)


class TestTraining:
    def test_fit_improves_likelihood(self):
        # Strongly structured data: alternating symbols.
        data = [[0, 1] * 15 for _ in range(5)]
        model = DiscreteHMM(2, 2, seed=4)
        before = sum(model.log_likelihood(s) for s in data)
        model.fit(data, iterations=10)
        after = sum(model.log_likelihood(s) for s in data)
        assert after > before

    def test_fit_keeps_distributions_valid(self):
        model = DiscreteHMM(3, 4, seed=5)
        model.fit([[0, 1, 2, 3, 0, 1]], iterations=3)
        assert np.isclose(model.initial.sum(), 1.0)
        assert np.allclose(model.transition.sum(axis=1), 1.0)
        assert np.allclose(model.emission.sum(axis=1), 1.0)
        assert (model.emission > 0).all()  # pseudocounts keep it positive

    def test_fit_validation(self):
        model = DiscreteHMM(2, 2)
        with pytest.raises(ValueError):
            model.fit([])
        with pytest.raises(ValueError):
            model.fit([[0, 1]], iterations=0)

    def test_trained_model_discriminates(self):
        """A model trained on alternating data should prefer alternating
        sequences over constant ones."""
        model = DiscreteHMM(2, 2, seed=6)
        model.fit([[0, 1] * 20], iterations=10)
        alternating = model.per_symbol_log_likelihood([0, 1] * 10)
        constant = model.per_symbol_log_likelihood([0] * 20)
        assert alternating > constant


class TestClusterer:
    def test_separates_structured_groups(self):
        db = SequenceDatabase.from_strings(
            ["abababababab", "babababababa", "ababababab",
             "ccddccddccdd", "ddccddccddcc", "cdcdccddccdd"]
        )
        result = HMMClusterer(num_states=2, seed=0).fit_predict(db, 2)
        assert result.labels[0] == result.labels[1] == result.labels[2]
        assert result.labels[3] == result.labels[4] == result.labels[5]
        assert result.labels[0] != result.labels[3]
        assert result.model_name == "HMM"

    def test_validation(self):
        with pytest.raises(ValueError):
            HMMClusterer(num_states=0)
