"""Quickstart: cluster a small synthetic sequence database with CLUSEQ.

Run with:  python examples/quickstart.py

Walks through the full public API surface in ~60 lines:
building a database, fitting CLUSEQ, inspecting clusters, scoring a
new sequence, and evaluating against ground truth.
"""

from repro import CLUSEQ, CluseqParams, generate_two_cluster_toy
from repro.evaluation import evaluate_clustering


def main() -> None:
    # 1. A toy database: 30 sequences favouring 'abab…' runs and 30
    #    favouring 'cdcd…' runs, with ground-truth labels attached.
    db = generate_two_cluster_toy(size_per_cluster=30, length=40, seed=7)
    print(f"database: {db}")
    print(f"example sequence: {db[0].as_string()!r} (label {db[0].label})\n")

    # 2. Fit CLUSEQ. The three inputs from the paper are k (initial
    #    cluster count — deliberately wrong here), c (significance
    #    threshold) and t (initial similarity threshold — the algorithm
    #    recalibrates it from the data).
    params = CluseqParams(
        k=1,                      # wrong on purpose; CLUSEQ adapts
        significance_threshold=2, # c, scaled for this tiny dataset
        similarity_threshold=1.2, # t, recalibrated automatically
        min_unique_members=3,     # consolidation threshold
        seed=1,
    )
    result = CLUSEQ(params).fit(db)
    print(result.summary())
    for stats in result.history:
        print(
            f"  iteration {stats.iteration}: {stats.clusters_after} clusters, "
            f"{stats.unclustered} unclustered, log t = {stats.log_threshold:.2f}"
        )
    print()

    # 3. Inspect the clusters: members, seed sequence, model size.
    for cluster in result.clusters:
        labels = sorted(db[i].label for i in cluster.members)
        majority = max(set(labels), key=labels.count)
        print(
            f"cluster {cluster.cluster_id}: {cluster.size} members, "
            f"mostly {majority!r}, PST has {cluster.pst.node_count} nodes"
        )
    print()

    # 4. Score a brand-new sequence against the fitted clusters.
    new_sequence = db.alphabet.encode("abababababababab")
    assignment = result.predict(new_sequence)
    scores = result.score_sequence(new_sequence)
    print(f"new sequence 'abab…' assigned to cluster {assignment}")
    for cluster_id, score in scores.items():
        print(f"  vs cluster {cluster_id}: log similarity {score.log_similarity:.2f}")
    print()

    # 5. Evaluate against the ground-truth labels.
    report = evaluate_clustering(db.labels, result.labels())
    print(
        f"accuracy {report.accuracy:.0%}, purity {report.purity:.0%}, "
        f"ARI {report.adjusted_rand_index:.2f}"
    )


if __name__ == "__main__":
    main()
