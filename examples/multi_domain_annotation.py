"""Multi-domain sequence annotation — the paper's §2 motivation.

Run with:  python examples/multi_domain_annotation.py

The paper justifies its segment-maximising similarity with multi-domain
sequences: "a protein may belong to multiple domains." This example
builds chimeric proteins by fusing members of two synthetic families,
fits CLUSEQ on the pure families, and then uses
``repro.core.segment_sequence`` to recover *which part of each chimera
came from which family* — unsupervised domain annotation.
"""

from collections import Counter

import numpy as np

from repro import CLUSEQ, CluseqParams
from repro.core import segment_sequence, domain_summary
from repro.datasets import make_protein_database


def main() -> None:
    # 1. Train on pure families.
    db = make_protein_database(
        num_families=4, scale=0.05, mean_length=120, seed=11, concentration=0.2
    )
    params = CluseqParams(
        k=4, significance_threshold=4, min_unique_members=4,
        max_iterations=20, seed=1,
    )
    result = CLUSEQ(params).fit(db)
    majority = {}
    for cluster in result.clusters:
        labels = [db[i].label for i in cluster.members]
        majority[cluster.cluster_id] = Counter(labels).most_common(1)[0][0]
    print(result.summary())
    print(f"cluster → family map: {majority}\n")

    # 2. Build chimeras: first half from one family, second half from
    #    another — a two-domain protein.
    rng = np.random.default_rng(5)
    families = db.distinct_labels()
    members = {
        family: [i for i in range(len(db)) if db[i].label == family]
        for family in families
    }
    correct = 0
    total = 0
    for trial in range(5):
        fam_a, fam_b = rng.choice(families, size=2, replace=False)
        left = db[int(rng.choice(members[fam_a]))].symbols[:60]
        right = db[int(rng.choice(members[fam_b]))].symbols[:60]
        chimera = db.alphabet.encode(left + right)

        domains = segment_sequence(result, chimera, switch_penalty=4.0)
        print(f"chimera {trial}: {fam_a} ⨝ {fam_b}")
        print(domain_summary(domains, alphabet=db.alphabet, encoded=chimera))

        # Check the annotation: the dominant label of each half.
        def dominant_family(lo, hi):
            votes = Counter()
            for domain in domains:
                if domain.cluster_id is None:
                    continue
                overlap = min(domain.end, hi) - max(domain.start, lo)
                if overlap > 0:
                    votes[majority[domain.cluster_id]] += overlap
            return votes.most_common(1)[0][0] if votes else None

        left_call = dominant_family(0, 60)
        right_call = dominant_family(60, 120)
        verdict_left = "✓" if left_call == fam_a else "✗"
        verdict_right = "✓" if right_call == fam_b else "✗"
        correct += (left_call == fam_a) + (right_call == fam_b)
        total += 2
        print(
            f"  left half called {left_call} {verdict_left}, "
            f"right half called {right_call} {verdict_right}\n"
        )

    print(f"domain calls correct: {correct}/{total}")


if __name__ == "__main__":
    main()
