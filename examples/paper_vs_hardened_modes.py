"""Literal-paper mechanics vs this implementation's hardened defaults.

Run with:  python examples/paper_vs_hardened_modes.py

DESIGN.md §6.1 documents a handful of places where the paper's literal
heuristics fail on general data, each behind a switch in CluseqParams.
This example runs the same workload under four configurations and
shows what each safeguard buys:

1. hardened defaults (calibration + rebuild + dissolve),
2. no iteration-0 calibration (the t bootstrap problem),
3. additive PSTs (the paper's §4.4 maintenance),
4. paper-style ascending consolidation (no mixture dissolution).
"""

from repro import CLUSEQ, CluseqParams
from repro.evaluation import evaluate_clustering, print_table
from repro.sequences import generate_clustered_database


def run_mode(db, name, **overrides):
    params = dict(
        k=1,
        significance_threshold=5,
        min_unique_members=5,
        similarity_threshold=1.2,
        max_iterations=25,
        seed=1,
    )
    params.update(overrides)
    result = CLUSEQ(CluseqParams(**params)).fit(db)
    report = evaluate_clustering(db.labels, result.labels())
    return (
        name,
        result.num_clusters,
        report.accuracy,
        report.macro_precision,
        report.macro_recall,
        result.iterations,
    )


def main() -> None:
    ds = generate_clustered_database(
        num_sequences=200,
        num_clusters=10,
        avg_length=120,
        alphabet_size=12,
        outlier_fraction=0.05,
        seed=3,
    )
    db = ds.database
    print(f"workload: {db} — 10 embedded clusters, 5% outliers")
    print("initial k = 1 (wrong on purpose), initial t = 1.2 (too low)\n")

    rows = [
        run_mode(db, "hardened defaults"),
        run_mode(db, "no t calibration", calibrate_threshold=False),
        run_mode(db, "additive PSTs (paper §4.4)", rebuild_each_iteration=False),
        run_mode(db, "ascending consolidation (paper §4.5)", dissolve_covered=False),
    ]
    print_table(
        headers=["mode", "clusters", "accuracy", "precision", "recall", "iters"],
        rows=rows,
        title="Paper-literal switches vs hardened defaults (true k = 10)",
        float_digits=2,
    )
    print(
        "Expected pattern: the hardened defaults recover ~10 pure\n"
        "clusters; disabling calibration usually collapses everything\n"
        "into one mixture cluster (the t=1.2 start admits every join\n"
        "in iteration 0, irreversibly); the other two switches degrade\n"
        "more gracefully — see DESIGN.md §6.1 for the mechanics."
    )


if __name__ == "__main__":
    main()
