"""Language clustering — the paper's Table 4 scenario.

Run with:  python examples/language_identification.py

Clusters English, romanised-Chinese and romanised-Japanese sentences
(spaces removed) together with Russian/German noise, entirely
unsupervised, and then shows *why* it works by inspecting the learned
probabilistic suffix trees: the English cluster's model assigns a high
probability to 'h' after 't', the Japanese model alternates consonants
and vowels, and so on — exactly the features the paper credits.
"""

from collections import Counter

from repro import CLUSEQ, CluseqParams
from repro.datasets import make_language_database
from repro.evaluation import evaluate_clustering, print_table


def main() -> None:
    # 1. Build the database: 80 sentences per language + 16 noise
    #    sentences, lowercase a-z, no spaces.
    db = make_language_database(
        sentences_per_language=80, noise_sentences=16, seed=2
    )
    print(f"language database: {db}")
    print(f"sample: {db[0].as_string()[:60]!r} ({db[0].label})\n")

    # 2. Cluster. k=3 is the number of *expected* languages but CLUSEQ
    #    would find it from k=1 as well (see Table 5 experiments).
    params = CluseqParams(
        k=3,
        significance_threshold=4,
        min_unique_members=4,
        max_iterations=20,
        seed=1,
    )
    result = CLUSEQ(params).fit(db)
    print(result.summary())

    # 3. Score against ground truth, Table 4 style.
    report = evaluate_clustering(db.labels, result.labels())
    print_table(
        headers=["Language", "Precision", "Recall"],
        rows=[
            (s.family, s.precision, s.recall)
            for s in report.family_scores
        ],
        title="Language clustering (paper Table 4 layout)",
        float_digits=2,
    )

    # 4. Inspect the learned models: the paper explains that English is
    #    easiest because of features like P(h | t) being high. Check
    #    what each cluster's PST thinks follows 't'.
    t_id = db.alphabet.id_of("t")
    h_id = db.alphabet.id_of("h")
    print("P('h' | 't') under each cluster's model:")
    for cluster in result.clusters:
        majority = Counter(
            db[i].label for i in cluster.members
        ).most_common(1)[0][0]
        p_h_after_t = cluster.pst.probability(h_id, [t_id])
        print(
            f"  cluster {cluster.cluster_id} (mostly {majority}): "
            f"{p_h_after_t:.3f}"
        )
    print()

    # 5. Noise handling: the Russian/German sentences should largely be
    #    left unclustered (the paper's outlier separation).
    outliers = set(result.outliers())
    true_noise = {
        i for i in range(len(db)) if db[i].label == "__outlier__"
    }
    caught = len(outliers & true_noise)
    print(
        f"noise sentences left unclustered: {caught}/{len(true_noise)} "
        f"(plus {len(outliers) - caught} real sentences below threshold)"
    )


if __name__ == "__main__":
    main()
