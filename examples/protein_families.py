"""Protein-family clustering — the paper's flagship scenario (§6.1).

Run with:  python examples/protein_families.py

Generates the SWISS-PROT substitute (per-family Markov backgrounds plus
conserved motifs), clusters it with CLUSEQ starting from a deliberately
wrong k, compares against the q-gram baseline, and prints per-family
precision/recall like the paper's Table 3. Also demonstrates FASTA
round-tripping and held-out classification with the fitted model.
"""

import tempfile
from pathlib import Path

from repro import CLUSEQ, CluseqParams, read_fasta
from repro.baselines import QGramClusterer
from repro.datasets import make_protein_database
from repro.evaluation import evaluate_clustering, print_table
from repro.sequences.io import write_fasta


def main() -> None:
    # 1. Generate the protein database: 6 families with the paper's
    #    size distribution, plus 5% random-sequence outliers.
    db = make_protein_database(
        num_families=6,
        scale=0.05,
        mean_length=120,
        outlier_fraction=0.05,
        seed=11,
        concentration=0.2,
    )
    print(f"protein database: {db}")
    print(f"families: {db.distinct_labels()}\n")

    # 2. FASTA round-trip — the database reads/writes standard FASTA
    #    with the family carried in the header.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "proteins.fasta"
        write_fasta(db, path)
        db = read_fasta(path)
    print(f"re-read from FASTA: {len(db)} sequences\n")

    # 3. Cluster with CLUSEQ. k=1 is far from the true 6 families; the
    #    successive generation + consolidation finds the real count.
    params = CluseqParams(
        k=1,
        significance_threshold=4,
        min_unique_members=4,
        max_iterations=25,
        seed=1,
    )
    result = CLUSEQ(params).fit(db)
    print(result.summary())

    report = evaluate_clustering(db.labels, result.labels())
    print_table(
        headers=["Family", "Size", "Precision", "Recall", "F1"],
        rows=[
            (s.family, s.size, s.precision, s.recall, s.f1)
            for s in sorted(report.family_scores, key=lambda s: -s.size)
        ],
        title="CLUSEQ per-family results",
        float_digits=2,
    )

    # 4. Baseline comparison: q-grams lose the sequential correlations.
    qgram = QGramClusterer(q=3, seed=1).fit_predict(
        db, len(db.distinct_labels())
    )
    qgram_report = evaluate_clustering(db.labels, qgram.labels)
    print(
        f"CLUSEQ accuracy {report.accuracy:.0%} "
        f"vs q-gram accuracy {qgram_report.accuracy:.0%}\n"
    )

    # 5. Classify a held-out "protein": sample a fresh sequence from one
    #    cluster's own PST (the model doubles as a generator) and check
    #    it is assigned back to that cluster.
    source_cluster = max(result.clusters, key=lambda cl: cl.size)
    synthetic_protein = source_cluster.pst.sample(120)
    predicted = result.predict(synthetic_protein)
    print(
        f"sequence sampled from cluster {source_cluster.cluster_id}'s model "
        f"was assigned to cluster {predicted}"
    )


if __name__ == "__main__":
    main()
