"""Web-access-log session clustering — a workload from the paper's intro.

Run with:  python examples/web_session_mining.py

The paper motivates sequence clustering with "web usage data" and
"system traces". This example synthesises click-stream sessions from
three behavioural archetypes — shoppers, readers and bots — clusters
them with CLUSEQ *without* being told the archetypes, and shows how
the discovered clusters' transition statistics expose each behaviour.
It also demonstrates the PST node budget (§5.1) on a stream where
memory is bounded.
"""

from collections import Counter

import numpy as np

from repro import CLUSEQ, CluseqParams
from repro.evaluation import evaluate_clustering
from repro.sequences import Alphabet, MarkovSource, SequenceDatabase

#: Page types a session can visit.
PAGES = {
    "H": "home",
    "S": "search",
    "P": "product",
    "C": "cart",
    "A": "article",
    "L": "listing",
    "R": "robots/API endpoint",
}


def behaviour_sources(alphabet: Alphabet):
    """Three behavioural archetypes as Markov click models."""
    n = alphabet.size
    index = {symbol: alphabet.id_of(symbol) for symbol in PAGES}

    def distribution(**weights):
        vec = np.full(n, 0.01)
        for symbol, weight in weights.items():
            vec[index[symbol]] = weight
        return vec / vec.sum()

    shopper = MarkovSource(
        n,
        order=1,
        transitions={
            (): distribution(H=5, S=3),
            (index["H"],): distribution(S=5, L=3),
            (index["S"],): distribution(P=6, S=2),
            (index["P"],): distribution(C=4, P=3, S=2),
            (index["C"],): distribution(P=3, C=2, H=1),
            (index["L"],): distribution(P=5, L=2),
        },
    )
    reader = MarkovSource(
        n,
        order=1,
        transitions={
            (): distribution(H=4, A=4),
            (index["H"],): distribution(A=6, L=2),
            (index["A"],): distribution(A=6, L=2, H=1),
            (index["L"],): distribution(A=5, L=2),
        },
    )
    bot = MarkovSource(
        n,
        order=1,
        transitions={
            (): distribution(R=6, L=2),
            (index["R"],): distribution(R=7, L=2),
            (index["L"],): distribution(L=5, R=3),
        },
    )
    return {"shopper": shopper, "reader": reader, "bot": bot}


def main() -> None:
    rng = np.random.default_rng(3)
    alphabet = Alphabet(PAGES.keys())
    sources = behaviour_sources(alphabet)

    # 1. Synthesize 60 sessions per archetype, 30-80 clicks each.
    db = SequenceDatabase(alphabet)
    for behaviour, source in sources.items():
        for encoded in source.sample_many(60, 55, rng=rng, length_jitter=0.4):
            db.add_sequence(alphabet.decode(encoded), label=behaviour)
    print(f"session log: {db}")
    print(f"sample session: {db[0].as_string()} ({db[0].label})\n")

    # 2. Cluster with a bounded PST (a streaming deployment would cap
    #    per-cluster memory exactly like this).
    params = CluseqParams(
        k=1,
        significance_threshold=4,
        min_unique_members=4,
        max_nodes=500,
        max_iterations=25,
        seed=1,
    )
    result = CLUSEQ(params).fit(db)
    print(result.summary())

    report = evaluate_clustering(db.labels, result.labels())
    print(f"accuracy vs hidden archetypes: {report.accuracy:.0%}\n")

    # 3. Explain each discovered cluster by its most characteristic
    #    transition: argmax over P(next | page) lifted over background.
    background = db.background_probabilities()
    print("most characteristic transition per discovered cluster:")
    for cluster in result.clusters:
        majority = Counter(
            db[i].label for i in cluster.members
        ).most_common(1)[0][0]
        best = None
        for page in PAGES:
            context = [alphabet.id_of(page)]
            vector = cluster.pst.probability_vector(context)
            lift = vector / np.maximum(background, 1e-9)
            symbol = int(np.argmax(lift))
            candidate = (float(lift[symbol]), page, alphabet.symbol_of(symbol))
            if best is None or candidate > best:
                best = candidate
        lift_value, source_page, target_page = best
        print(
            f"  cluster {cluster.cluster_id} ({cluster.size} sessions, "
            f"mostly {majority}): {PAGES[source_page]} → "
            f"{PAGES[target_page]} at {lift_value:.1f}× background rate"
        )


if __name__ == "__main__":
    main()
