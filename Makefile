.PHONY: check test lint typecheck invariants invariants-all sarif

PYTHON ?= python

# The full local gate: everything CI runs, in one command.
check: invariants invariants-all lint typecheck test

test:
	$(PYTHON) -m pytest -x -q

lint:
	ruff check .

# Strict on the paper-critical layers (core algorithm, streaming
# engine, observability, sequence models, baselines), baseline
# strictness (from pyproject [tool.mypy]) on the rest.
typecheck:
	mypy --strict src/repro/core src/repro/obs src/repro/stream src/repro/shard src/repro/sequences src/repro/baselines
	mypy src/repro

# Repo-specific invariants (CLQ001-CLQ010, two-pass whole-program
# analysis); stdlib-only, always runnable even where ruff/mypy are
# not installed. The committed baseline is empty: src/repro is clean.
invariants:
	$(PYTHON) -m tools.checkers src/repro --baseline tools/checkers/baseline.json

# The relaxed sweep over test and benchmark code (package-scoped rules
# no-op there; CLQ004 and the inline-leak check still apply).
invariants-all:
	$(PYTHON) -m tools.checkers src/repro tests benchmarks --baseline tools/checkers/baseline.json

# SARIF export for GitHub code scanning (CI uploads this artifact).
sarif:
	$(PYTHON) -m tools.checkers src/repro tests benchmarks --baseline tools/checkers/baseline.json --sarif cluseq.sarif || true
	@echo "wrote cluseq.sarif"
