.PHONY: check test lint typecheck invariants

PYTHON ?= python

# The full local gate: everything CI runs, in one command.
check: invariants lint typecheck test

test:
	$(PYTHON) -m pytest -x -q

lint:
	ruff check .

# Strict on the paper-critical layers (core algorithm, streaming
# engine, observability), baseline strictness (from pyproject
# [tool.mypy]) on the rest.
typecheck:
	mypy --strict src/repro/core src/repro/obs src/repro/stream
	mypy src/repro

# Repo-specific AST invariants (CLQ001-CLQ005); stdlib-only, always
# runnable even where ruff/mypy are not installed.
invariants:
	$(PYTHON) -m tools.checkers src/repro
