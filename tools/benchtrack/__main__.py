"""CLI for the bench trajectory ledger.

Subcommands::

    python -m tools.benchtrack ingest BENCH.json [--ledger L] [--report R]
    python -m tools.benchtrack report [--ledger L] [--out R]
    python -m tools.benchtrack check BENCH.json [--ledger L]
                                     [--metric M] [--tolerance T]
    python -m tools.benchtrack check-parallel BENCH.json
                                     [--min-cpus N] [--tolerance T]
    python -m tools.benchtrack check-shards BENCH.json
                                     [--min-cpus N] [--tolerance T]
    python -m tools.benchtrack check-serving BENCH.json [--ledger L]
                                     [--tolerance T] [--latency-tolerance T]

``--check BENCH.json`` (no subcommand) is sugar for ``check`` with the
defaults — the form CI uses. ``check-parallel`` compares workers>0
rows against their workers=0 twin inside one document and passes
trivially below ``--min-cpus``; ``check-shards`` does the same for
shards>1 rows against their shards=1 twin. ``check-serving`` gates the
serving bench against its ledger baseline on both throughput (req/s
floor) and tail latency (p99 ceiling).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from .ledger import (
    DEFAULT_LATENCY_TOLERANCE,
    DEFAULT_METRIC,
    DEFAULT_SERVING_TOLERANCE,
    DEFAULT_TOLERANCE,
    check_parallel,
    check_regressions,
    check_serving,
    check_shards,
    ingest,
    load_ledger,
    render_report,
    save_ledger,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
DEFAULT_LEDGER = REPO_ROOT / "BENCH_TRAJECTORY.json"
DEFAULT_REPORT = REPO_ROOT / "BENCH_TRAJECTORY.md"


def _add_ledger_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--ledger",
        default=str(DEFAULT_LEDGER),
        metavar="PATH",
        help=f"ledger JSON path (default: {DEFAULT_LEDGER.name} at repo root)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="benchtrack", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--check",
        dest="check_sugar",
        metavar="BENCH_JSON",
        default=None,
        help="shorthand for the `check` subcommand with default settings",
    )
    subparsers = parser.add_subparsers(dest="command")

    cmd_ingest = subparsers.add_parser(
        "ingest", help="append a bench document to the ledger"
    )
    cmd_ingest.add_argument("bench_json", help="repro.bench/v1 document")
    _add_ledger_flag(cmd_ingest)
    cmd_ingest.add_argument(
        "--report",
        default=str(DEFAULT_REPORT),
        metavar="PATH",
        help="markdown report to regenerate (default: "
        f"{DEFAULT_REPORT.name}; pass empty string to skip)",
    )

    cmd_report = subparsers.add_parser(
        "report", help="regenerate the markdown trajectory report"
    )
    _add_ledger_flag(cmd_report)
    cmd_report.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the report here instead of stdout",
    )

    cmd_check = subparsers.add_parser(
        "check", help="fail when a bench document regresses vs the ledger"
    )
    cmd_check.add_argument("bench_json", help="repro.bench/v1 document")
    _add_ledger_flag(cmd_check)
    cmd_check.add_argument(
        "--metric",
        default=DEFAULT_METRIC,
        help=f"result field to compare (default: {DEFAULT_METRIC})",
    )
    cmd_check.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional drop before failing "
        f"(default: {DEFAULT_TOLERANCE})",
    )

    cmd_parallel = subparsers.add_parser(
        "check-parallel",
        help="fail when a workers>0 result is slower than its "
        "workers=0 twin in the same bench document",
    )
    cmd_parallel.add_argument("bench_json", help="repro.bench/v1 document")
    cmd_parallel.add_argument(
        "--min-cpus",
        type=int,
        default=2,
        metavar="N",
        help="skip the check (pass) on machines with fewer CPUs "
        "(default: 2 — parallel speedup needs real cores)",
    )
    cmd_parallel.add_argument(
        "--tolerance",
        type=float,
        default=0.1,
        help="allowed fractional slowdown vs serial before failing "
        "(default: 0.1, absorbs runner noise)",
    )

    cmd_shards = subparsers.add_parser(
        "check-shards",
        help="fail when a shards>1 result is slower than its "
        "shards=1 twin in the same bench document",
    )
    cmd_shards.add_argument("bench_json", help="repro.bench/v1 document")
    cmd_shards.add_argument(
        "--min-cpus",
        type=int,
        default=2,
        metavar="N",
        help="skip the check (pass) on machines with fewer CPUs "
        "(default: 2 — shard parallelism needs real cores)",
    )
    cmd_shards.add_argument(
        "--tolerance",
        type=float,
        default=0.1,
        help="allowed fractional slowdown vs single-shard before failing "
        "(default: 0.1, absorbs runner noise)",
    )

    cmd_serving = subparsers.add_parser(
        "check-serving",
        help="fail when a serving bench regresses vs the ledger "
        "(req/s floor and p99 latency ceiling)",
    )
    cmd_serving.add_argument("bench_json", help="repro.bench/v1 document")
    _add_ledger_flag(cmd_serving)
    cmd_serving.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_SERVING_TOLERANCE,
        help="allowed fractional req/s drop before failing "
        f"(default: {DEFAULT_SERVING_TOLERANCE})",
    )
    cmd_serving.add_argument(
        "--latency-tolerance",
        type=float,
        default=DEFAULT_LATENCY_TOLERANCE,
        help="allowed fractional p99 rise before failing "
        f"(default: {DEFAULT_LATENCY_TOLERANCE} — tail latency is noisy)",
    )
    return parser


def _load_doc(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: bench document must be a JSON object")
    return doc


def _command_ingest(args: argparse.Namespace) -> int:
    ledger = load_ledger(args.ledger)
    doc = _load_doc(args.bench_json)
    entry = ingest(ledger, doc, source=Path(args.bench_json).name)
    save_ledger(args.ledger, ledger)
    print(
        f"ingested {args.bench_json} "
        f"({entry['bench']}, sha {str(entry.get('git_sha'))[:10]}) "
        f"-> {args.ledger} ({len(ledger['entries'])} entries)"
    )
    if args.report:
        Path(args.report).write_text(render_report(ledger), encoding="utf-8")
        print(f"report regenerated at {args.report}")
    return 0


def _command_report(args: argparse.Namespace) -> int:
    ledger = load_ledger(args.ledger)
    text = render_report(ledger)
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"report written to {args.out}")
    else:
        print(text)
    return 0


def _command_check(
    args: argparse.Namespace,
    metric: Optional[str] = None,
    tolerance: Optional[float] = None,
) -> int:
    ledger = load_ledger(args.ledger)
    doc = _load_doc(args.bench_json)
    messages = check_regressions(
        ledger,
        doc,
        metric=metric if metric is not None else args.metric,
        tolerance=tolerance if tolerance is not None else args.tolerance,
    )
    if messages:
        for message in messages:
            print(f"REGRESSION: {message}", file=sys.stderr)
        return 1
    print(f"benchtrack check passed: {args.bench_json} vs {args.ledger}")
    return 0


def _command_check_parallel(args: argparse.Namespace) -> int:
    doc = _load_doc(args.bench_json)
    import os

    cpu_count = os.cpu_count() or 1
    environment = doc.get("environment")
    if isinstance(environment, dict) and isinstance(
        environment.get("cpu_count"), int
    ):
        cpu_count = environment["cpu_count"]
    if cpu_count < args.min_cpus:
        print(
            f"check-parallel skipped: {cpu_count} CPU(s) < "
            f"--min-cpus {args.min_cpus} (parallel speedup needs real cores)"
        )
        return 0
    messages = check_parallel(
        doc,
        min_cpus=args.min_cpus,
        tolerance=args.tolerance,
        cpu_count=cpu_count,
    )
    if messages:
        for message in messages:
            print(f"PARALLEL REGRESSION: {message}", file=sys.stderr)
        return 1
    print(f"benchtrack check-parallel passed: {args.bench_json}")
    return 0


def _command_check_shards(args: argparse.Namespace) -> int:
    doc = _load_doc(args.bench_json)
    import os

    cpu_count = os.cpu_count() or 1
    environment = doc.get("environment")
    if isinstance(environment, dict) and isinstance(
        environment.get("cpu_count"), int
    ):
        cpu_count = environment["cpu_count"]
    if cpu_count < args.min_cpus:
        print(
            f"check-shards skipped: {cpu_count} CPU(s) < "
            f"--min-cpus {args.min_cpus} (shard parallelism needs real cores)"
        )
        return 0
    messages = check_shards(
        doc,
        min_cpus=args.min_cpus,
        tolerance=args.tolerance,
        cpu_count=cpu_count,
    )
    if messages:
        for message in messages:
            print(f"SHARD REGRESSION: {message}", file=sys.stderr)
        return 1
    print(f"benchtrack check-shards passed: {args.bench_json}")
    return 0


def _command_check_serving(args: argparse.Namespace) -> int:
    ledger = load_ledger(args.ledger)
    doc = _load_doc(args.bench_json)
    messages = check_serving(
        ledger,
        doc,
        tolerance=args.tolerance,
        latency_tolerance=args.latency_tolerance,
    )
    if messages:
        for message in messages:
            print(f"SERVING REGRESSION: {message}", file=sys.stderr)
        return 1
    print(f"benchtrack check-serving passed: {args.bench_json} vs {args.ledger}")
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.check_sugar is not None:
        if args.command is not None:
            parser.error("--check cannot be combined with a subcommand")
        args.bench_json = args.check_sugar
        args.ledger = str(DEFAULT_LEDGER)
        return _command_check(
            args, metric=DEFAULT_METRIC, tolerance=DEFAULT_TOLERANCE
        )
    if args.command == "ingest":
        return _command_ingest(args)
    if args.command == "report":
        return _command_report(args)
    if args.command == "check":
        return _command_check(args)
    if args.command == "check-parallel":
        return _command_check_parallel(args)
    if args.command == "check-shards":
        return _command_check_shards(args)
    if args.command == "check-serving":
        return _command_check_serving(args)
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
