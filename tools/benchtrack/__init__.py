"""Bench-trajectory ledger — the perf-regression memory of the repo.

Every benchmark run that writes a ``repro.bench/v1`` document (see
``benchmarks/bench_backend_scoring.py``) can be *ingested* into the
append-only ledger ``BENCH_TRAJECTORY.json`` (schema
``repro.benchtrack/v1``), which accumulates one entry per run with the
git SHA, timestamp, workload spec and per-configuration results. A
markdown report (``BENCH_TRAJECTORY.md``) is regenerated from the
ledger on every ingest, and ``check`` compares a fresh bench document
against the ledger baseline for the *same workload* and fails when a
tracked metric regresses beyond the configured tolerance — the CI
perf-smoke gate.

Usage::

    python -m tools.benchtrack ingest BENCH_PR8.json
    python -m tools.benchtrack report
    python -m tools.benchtrack check BENCH_smoke.json --tolerance 0.5
    python -m tools.benchtrack check-parallel BENCH_smoke.json --min-cpus 2
    python -m tools.benchtrack --check BENCH_smoke.json   # sugar

``check-parallel`` is the intra-document gate: it pairs ``workers>0``
rows against their ``workers=0`` twin and fails when parallel scoring
is slower than serial (skipped below ``--min-cpus`` — a single-core
machine cannot show parallel speedup); ``check-shards`` is its
sharded-streaming sibling, pairing ``shards>1`` rows against their
``shards=1`` twin (``benchmarks/bench_shard_throughput.py`` produces
the documents). ``check-serving`` is the
serving-layer gate: against the ledger baseline for the same workload
it enforces a ``req_per_second`` floor and a ``p99_ms`` ceiling
(``benchmarks/bench_serving.py`` produces the documents)::

    python -m tools.benchtrack check-serving BENCH_SERVING.json

Stdlib only — no numpy, no third-party deps — so it runs anywhere the
CI does, including before the project venv is built.
"""

from __future__ import annotations

from .ledger import (
    LEDGER_SCHEMA,
    check_parallel,
    check_regressions,
    check_serving,
    check_shards,
    ingest,
    load_ledger,
    new_ledger,
    render_report,
    save_ledger,
)
from .schema import BENCH_SCHEMA, load_bench_document, stamp_bench_document, validate_bench_document

__all__ = [
    "BENCH_SCHEMA",
    "LEDGER_SCHEMA",
    "check_parallel",
    "check_regressions",
    "check_serving",
    "check_shards",
    "ingest",
    "load_bench_document",
    "load_ledger",
    "new_ledger",
    "render_report",
    "save_ledger",
    "stamp_bench_document",
    "validate_bench_document",
]
