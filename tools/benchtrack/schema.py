"""``repro.bench/v1`` document validation and provenance stamping.

A bench document is what a benchmark harness writes after a run::

    {
      "schema": "repro.bench/v1",
      "bench": "backend_scoring",
      "workload": {"alphabet": 12, ...},
      "results": [{"backend": "vectorized", "workers": 0,
                   "seconds": 0.02, "speedup": 5.8, ...}, ...],
      # stamped on ingest (or by the harness itself):
      "git_sha": "...", "generated_unix": 1780000000.0
    }

``validate_bench_document`` returns a list of human-readable problems
(empty = valid); ``stamp_bench_document`` adds ``git_sha`` and
``generated_unix`` so ledger entries carry provenance even when the
harness forgot to.
"""

from __future__ import annotations

import json
import subprocess
import time
from pathlib import Path
from typing import Any, Optional, Union

BENCH_SCHEMA = "repro.bench/v1"

PathLike = Union[str, Path]


def validate_bench_document(doc: Any) -> list[str]:
    """All the reasons *doc* is not a valid ``repro.bench/v1`` document."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"document must be a JSON object, got {type(doc).__name__}"]
    if doc.get("schema") != BENCH_SCHEMA:
        problems.append(
            f"schema must be {BENCH_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    bench = doc.get("bench")
    if not isinstance(bench, str) or not bench:
        problems.append("bench must be a non-empty string")
    workload = doc.get("workload")
    if not isinstance(workload, dict) or not workload:
        problems.append("workload must be a non-empty object")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        problems.append("results must be a non-empty array")
        return problems
    for index, row in enumerate(results):
        if not isinstance(row, dict):
            problems.append(f"results[{index}] must be an object")
            continue
        for key in ("seconds",):
            value = row.get(key)
            if not isinstance(value, (int, float)) or value <= 0:
                problems.append(
                    f"results[{index}].{key} must be a positive number, "
                    f"got {value!r}"
                )
    stamp = doc.get("generated_unix")
    if stamp is not None and not isinstance(stamp, (int, float)):
        problems.append("generated_unix must be a number when present")
    sha = doc.get("git_sha")
    if sha is not None and not isinstance(sha, str):
        problems.append("git_sha must be a string when present")
    return problems


def current_git_sha(repo_root: Optional[PathLike] = None) -> Optional[str]:
    """HEAD commit of *repo_root* (default: this repo), or None."""
    root = Path(repo_root) if repo_root is not None else Path(__file__).resolve().parents[2]
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def stamp_bench_document(
    doc: dict[str, Any], repo_root: Optional[PathLike] = None
) -> dict[str, Any]:
    """Add provenance (``git_sha``, ``generated_unix``) in place.

    Existing stamps are kept — a harness that stamped at run time knows
    better than an ingest that happens later.
    """
    if doc.get("generated_unix") is None:
        doc["generated_unix"] = time.time()
    if doc.get("git_sha") is None:
        sha = current_git_sha(repo_root)
        if sha is not None:
            doc["git_sha"] = sha
    return doc


def write_bench_document(path: PathLike, doc: dict[str, Any]) -> Path:
    """Validate, stamp and write *doc* as pretty JSON; returns the path.

    The single write path for ``repro.bench/v1`` files: anything a
    harness emits through here is guaranteed ingestable by the ledger
    and carries git SHA + timestamp provenance.
    """
    problems = validate_bench_document(doc)
    if problems:
        raise ValueError(
            f"refusing to write invalid {BENCH_SCHEMA} document:\n  "
            + "\n  ".join(problems)
        )
    stamp_bench_document(doc)
    target = Path(path)
    target.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return target


def load_bench_document(path: PathLike) -> dict[str, Any]:
    """Load and validate a bench JSON; raises ValueError with all problems."""
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    problems = validate_bench_document(doc)
    if problems:
        raise ValueError(
            f"{path}: invalid {BENCH_SCHEMA} document:\n  "
            + "\n  ".join(problems)
        )
    assert isinstance(doc, dict)
    return doc
