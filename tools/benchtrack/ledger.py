"""The append-only bench trajectory ledger (``repro.benchtrack/v1``).

Ledger shape::

    {
      "schema": "repro.benchtrack/v1",
      "entries": [
        {"bench": "backend_scoring",
         "workload": {...},
         "git_sha": "...", "generated_unix": ..., "source": "BENCH_PR5.json",
         "results": [...]},
        ...
      ]
    }

Entries are appended in ingest order and never rewritten, so the file
is a longitudinal record of how each benchmark moved across PRs.
Comparisons only ever pair entries whose ``bench`` *and* ``workload``
match exactly — a smoke run is never judged against a full run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional, Union

from .schema import BENCH_SCHEMA, stamp_bench_document, validate_bench_document

LEDGER_SCHEMA = "repro.benchtrack/v1"

#: Default ratio metric compared by ``check`` — machine-portable, unlike
#: raw seconds (the reference backend is measured in the same process).
DEFAULT_METRIC = "speedup"

#: Default allowed fractional drop before ``check`` fails. Generous on
#: purpose: CI machines are noisy and the gate should catch collapses
#: (a 2x regression), not jitter.
DEFAULT_TOLERANCE = 0.5

PathLike = Union[str, Path]


def new_ledger() -> dict[str, Any]:
    return {"schema": LEDGER_SCHEMA, "entries": []}


def load_ledger(path: PathLike) -> dict[str, Any]:
    """Load a ledger, or a fresh one when *path* does not exist yet."""
    target = Path(path)
    if not target.exists():
        return new_ledger()
    with open(target, encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict) or doc.get("schema") != LEDGER_SCHEMA:
        raise ValueError(
            f"{path}: not a {LEDGER_SCHEMA} ledger "
            f"(schema: {doc.get('schema') if isinstance(doc, dict) else doc!r})"
        )
    entries = doc.get("entries")
    if not isinstance(entries, list):
        raise ValueError(f"{path}: ledger entries must be an array")
    return doc


def save_ledger(path: PathLike, ledger: dict[str, Any]) -> None:
    Path(path).write_text(
        json.dumps(ledger, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )


def ingest(
    ledger: dict[str, Any],
    doc: dict[str, Any],
    source: Optional[str] = None,
) -> dict[str, Any]:
    """Validate, stamp and append *doc* to *ledger*; returns the entry."""
    problems = validate_bench_document(doc)
    if problems:
        raise ValueError(
            f"invalid {BENCH_SCHEMA} document:\n  " + "\n  ".join(problems)
        )
    stamp_bench_document(doc)
    entry = {
        "bench": doc["bench"],
        "workload": doc["workload"],
        "git_sha": doc.get("git_sha"),
        "generated_unix": doc.get("generated_unix"),
        "source": source,
        "results": doc["results"],
    }
    ledger["entries"].append(entry)
    return entry


#: Result-row fields that are measurements, not configuration.
_METRIC_FIELDS = frozenset(
    {
        "seconds",
        "pairs_per_second",
        "seqs_per_second",
        "speedup",
        # serving measurements (benchmarks/bench_serving.py)
        "req_per_second",
        "p50_ms",
        "p99_ms",
        "batch_occupancy",
        "requests",
        "rejected",
        "errors",
    }
)


def _config_key(row: dict[str, Any], ignore: frozenset = frozenset()) -> str:
    """Stable label for one result row: every non-metric field."""
    parts = []
    for key in sorted(row):
        if key in _METRIC_FIELDS or key in ignore:
            continue
        if isinstance(row[key], (str, int, bool)):
            parts.append(f"{key}={row[key]}")
    return " ".join(parts) or "default"


def _baseline_entry(
    ledger: dict[str, Any], doc: dict[str, Any]
) -> Optional[dict[str, Any]]:
    """Most recent ledger entry with the same bench and exact workload."""
    for entry in reversed(ledger.get("entries", [])):
        if (
            entry.get("bench") == doc.get("bench")
            and entry.get("workload") == doc.get("workload")
        ):
            return entry
    return None


def check_regressions(
    ledger: dict[str, Any],
    doc: dict[str, Any],
    metric: str = DEFAULT_METRIC,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[str]:
    """Regression messages for *doc* against its ledger baseline.

    Empty list = pass. Configurations present in only one side are
    skipped (a new backend is not a regression); a missing baseline for
    the (bench, workload) pair passes with no messages — ``check`` can
    run before the first ingest of a new workload.
    """
    problems = validate_bench_document(doc)
    if problems:
        return [f"invalid bench document: {p}" for p in problems]
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    baseline = _baseline_entry(ledger, doc)
    if baseline is None:
        return []
    base_rows = {
        _config_key(row): row
        for row in baseline["results"]
        if isinstance(row, dict)
    }
    messages = []
    for row in doc["results"]:
        key = _config_key(row)
        base = base_rows.get(key)
        if base is None:
            continue
        new_value = row.get(metric)
        old_value = base.get(metric)
        if not isinstance(new_value, (int, float)) or not isinstance(
            old_value, (int, float)
        ):
            continue
        floor = old_value * (1.0 - tolerance)
        if new_value < floor:
            messages.append(
                f"{doc['bench']} [{key}]: {metric} regressed "
                f"{old_value:.3g} -> {new_value:.3g} "
                f"(floor {floor:.3g} at tolerance {tolerance:.0%}, "
                f"baseline {baseline.get('git_sha') or 'unstamped'})"
            )
    return messages


_WORKERS_ONLY = frozenset({"workers"})


def check_parallel(
    doc: dict[str, Any],
    min_cpus: int = 2,
    tolerance: float = 0.1,
    cpu_count: Optional[int] = None,
) -> list[str]:
    """Messages when a ``workers>0`` row is slower than its serial twin.

    Pairs result rows *within one document* that differ only in
    ``workers`` and fails any parallel row whose ``seconds`` exceeds
    the ``workers=0`` row's by more than *tolerance* (fractional; the
    allowance absorbs CI-runner noise, not design regressions). The
    whole check is skipped — empty list — on machines with fewer than
    *min_cpus* CPUs: parallel speedup is physically impossible on a
    single core, and a gate must not fail for the hardware's sake. The
    document's recorded ``environment.cpu_count`` (the machine that ran
    the bench) is preferred over this machine's count.
    """
    problems = validate_bench_document(doc)
    if problems:
        return [f"invalid bench document: {p}" for p in problems]
    if tolerance < 0.0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    if cpu_count is None:
        environment = doc.get("environment")
        if isinstance(environment, dict) and isinstance(
            environment.get("cpu_count"), int
        ):
            cpu_count = environment["cpu_count"]
        else:
            import os

            cpu_count = os.cpu_count() or 1
    if cpu_count < min_cpus:
        return []
    serial: dict[str, dict[str, Any]] = {}
    for row in doc["results"]:
        if isinstance(row, dict) and row.get("workers") == 0:
            serial[_config_key(row, ignore=_WORKERS_ONLY)] = row
    messages = []
    for row in doc["results"]:
        if not isinstance(row, dict):
            continue
        workers = row.get("workers")
        if not isinstance(workers, int) or workers <= 0:
            continue
        base = serial.get(_config_key(row, ignore=_WORKERS_ONLY))
        if base is None:
            continue
        seconds = row.get("seconds")
        base_seconds = base.get("seconds")
        if not isinstance(seconds, (int, float)) or not isinstance(
            base_seconds, (int, float)
        ):
            continue
        ceiling = base_seconds * (1.0 + tolerance)
        if seconds > ceiling:
            messages.append(
                f"{doc['bench']} [{_config_key(row)}]: workers={workers} took "
                f"{seconds:.4g}s vs {base_seconds:.4g}s serial "
                f"(ceiling {ceiling:.4g}s at tolerance {tolerance:.0%}, "
                f"{cpu_count} CPUs)"
            )
    return messages


_SHARDS_ONLY = frozenset({"shards"})


def check_shards(
    doc: dict[str, Any],
    min_cpus: int = 2,
    tolerance: float = 0.1,
    cpu_count: Optional[int] = None,
) -> list[str]:
    """Messages when a ``shards>1`` row is slower than its single-shard twin.

    The sharded-streaming analogue of :func:`check_parallel`: pairs
    result rows *within one document* that differ only in ``shards``
    and fails any multi-shard row whose ``seconds`` exceeds the
    ``shards=1`` row's by more than *tolerance* (fractional). Skipped
    entirely — empty list — when the bench machine has fewer than
    *min_cpus* CPUs, where shard parallelism cannot pay for its
    routing/consolidation overhead by construction. The document's
    recorded ``environment.cpu_count`` is preferred over this
    machine's count.
    """
    problems = validate_bench_document(doc)
    if problems:
        return [f"invalid bench document: {p}" for p in problems]
    if tolerance < 0.0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    if cpu_count is None:
        environment = doc.get("environment")
        if isinstance(environment, dict) and isinstance(
            environment.get("cpu_count"), int
        ):
            cpu_count = environment["cpu_count"]
        else:
            import os

            cpu_count = os.cpu_count() or 1
    if cpu_count < min_cpus:
        return []
    single: dict[str, dict[str, Any]] = {}
    for row in doc["results"]:
        if isinstance(row, dict) and row.get("shards") == 1:
            single[_config_key(row, ignore=_SHARDS_ONLY)] = row
    messages = []
    for row in doc["results"]:
        if not isinstance(row, dict):
            continue
        shards = row.get("shards")
        if not isinstance(shards, int) or shards <= 1:
            continue
        base = single.get(_config_key(row, ignore=_SHARDS_ONLY))
        if base is None:
            continue
        seconds = row.get("seconds")
        base_seconds = base.get("seconds")
        if not isinstance(seconds, (int, float)) or not isinstance(
            base_seconds, (int, float)
        ):
            continue
        ceiling = base_seconds * (1.0 + tolerance)
        if seconds > ceiling:
            messages.append(
                f"{doc['bench']} [{_config_key(row)}]: shards={shards} took "
                f"{seconds:.4g}s vs {base_seconds:.4g}s single-shard "
                f"(ceiling {ceiling:.4g}s at tolerance {tolerance:.0%}, "
                f"{cpu_count} CPUs)"
            )
    return messages


#: Default allowed fractional throughput drop / p99 rise for serving.
DEFAULT_SERVING_TOLERANCE = 0.5
DEFAULT_LATENCY_TOLERANCE = 1.0


def check_serving(
    ledger: dict[str, Any],
    doc: dict[str, Any],
    tolerance: float = DEFAULT_SERVING_TOLERANCE,
    latency_tolerance: float = DEFAULT_LATENCY_TOLERANCE,
) -> list[str]:
    """Serving regression messages for *doc* vs its ledger baseline.

    The serving analogue of :func:`check_regressions`, but two-sided:
    ``req_per_second`` must not *drop* more than *tolerance* below the
    baseline, and ``p99_ms`` must not *rise* more than
    *latency_tolerance* above it. Latency gets its own (more generous)
    allowance — tail latency on shared CI runners is far noisier than
    throughput, and the gate exists to catch collapses, not scheduler
    jitter. Rows or baselines missing either metric are skipped, as is
    a missing (bench, workload) baseline entirely.
    """
    problems = validate_bench_document(doc)
    if problems:
        return [f"invalid bench document: {p}" for p in problems]
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    if latency_tolerance < 0.0:
        raise ValueError(
            f"latency tolerance must be >= 0, got {latency_tolerance}"
        )
    baseline = _baseline_entry(ledger, doc)
    if baseline is None:
        return []
    base_rows = {
        _config_key(row): row
        for row in baseline["results"]
        if isinstance(row, dict)
    }
    sha = baseline.get("git_sha") or "unstamped"
    messages = []
    for row in doc["results"]:
        key = _config_key(row)
        base = base_rows.get(key)
        if base is None:
            continue
        new_rps = row.get("req_per_second")
        old_rps = base.get("req_per_second")
        if isinstance(new_rps, (int, float)) and isinstance(
            old_rps, (int, float)
        ):
            floor = old_rps * (1.0 - tolerance)
            if new_rps < floor:
                messages.append(
                    f"{doc['bench']} [{key}]: req_per_second regressed "
                    f"{old_rps:.4g} -> {new_rps:.4g} "
                    f"(floor {floor:.4g} at tolerance {tolerance:.0%}, "
                    f"baseline {sha})"
                )
        new_p99 = row.get("p99_ms")
        old_p99 = base.get("p99_ms")
        if isinstance(new_p99, (int, float)) and isinstance(
            old_p99, (int, float)
        ):
            ceiling = old_p99 * (1.0 + latency_tolerance)
            if new_p99 > ceiling:
                messages.append(
                    f"{doc['bench']} [{key}]: p99_ms regressed "
                    f"{old_p99:.4g} -> {new_p99:.4g} "
                    f"(ceiling {ceiling:.4g} at tolerance "
                    f"{latency_tolerance:.0%}, baseline {sha})"
                )
    return messages


def _format_unix(stamp: Any) -> str:
    if not isinstance(stamp, (int, float)):
        return "-"
    import datetime

    return datetime.datetime.fromtimestamp(
        stamp, tz=datetime.timezone.utc
    ).strftime("%Y-%m-%d")


def render_report(ledger: dict[str, Any]) -> str:
    """Markdown trajectory report, one table per (bench, workload)."""
    lines = [
        "# Bench trajectory",
        "",
        "Regenerated by `python -m tools.benchtrack` — do not edit.",
        "Schema: `" + LEDGER_SCHEMA + "`.",
    ]
    groups: dict[str, list[dict[str, Any]]] = {}
    for entry in ledger.get("entries", []):
        workload = json.dumps(entry.get("workload", {}), sort_keys=True)
        groups.setdefault(f"{entry.get('bench')} {workload}", []).append(entry)
    for group_key in sorted(groups):
        entries = groups[group_key]
        bench = entries[0].get("bench", "?")
        lines += [
            "",
            f"## {bench}",
            "",
            f"Workload: `{json.dumps(entries[0].get('workload', {}), sort_keys=True)}`",
            "",
            "| date | sha | config | seconds | speedup |",
            "|---|---|---|---|---|",
        ]
        for entry in entries:
            sha = entry.get("git_sha") or "-"
            date = _format_unix(entry.get("generated_unix"))
            for row in entry.get("results", []):
                if not isinstance(row, dict):
                    continue
                seconds = row.get("seconds")
                speedup = row.get("speedup")
                seconds_cell = (
                    f"{seconds:.4g}" if isinstance(seconds, (int, float)) else "-"
                )
                speedup_cell = (
                    f"{speedup:.2f}x"
                    if isinstance(speedup, (int, float))
                    else "-"
                )
                lines.append(
                    f"| {date} | {str(sha)[:10]} | {_config_key(row)} "
                    f"| {seconds_cell} | {speedup_cell} |"
                )
    lines.append("")
    return "\n".join(lines)
