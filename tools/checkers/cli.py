"""Command-line front end: ``python -m tools.checkers [paths...]``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from collections.abc import Sequence

from .baseline import Baseline
from .engine import Checker, CheckerError, all_rules, get_rule
from .sarif import write_sarif


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.checkers",
        description="CLUSEQ repo-specific invariant checks (CLQ rules)",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        default=["src/repro"],
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the known rules and exit",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the summary line (violations still print)",
    )
    parser.add_argument(
        "--sarif",
        metavar="FILE",
        type=Path,
        default=None,
        help="also write findings as SARIF 2.1.0 to FILE (for code scanning)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        type=Path,
        default=None,
        help="suppress findings fingerprinted in this baseline file",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the --baseline file (default tools/checkers/baseline.json) "
        "to accept every current finding, then exit 0",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.summary}")
        return 0

    if args.select:
        try:
            rules = [get_rule(r.strip()) for r in args.select.split(",") if r.strip()]
        except KeyError as exc:
            parser.error(str(exc.args[0]))
        if not rules:
            parser.error("--select given but no rule ids parsed")
    else:
        rules = all_rules()

    targets: list[Path] = []
    for raw in args.targets:
        path = Path(raw)
        if not path.exists():
            parser.error(f"no such file or directory: {raw}")
        targets.append(path)

    checker = Checker(rules)
    try:
        violations, files_checked = checker.check_targets(targets)
    except CheckerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        baseline_path = args.baseline or Path("tools/checkers/baseline.json")
        count = Baseline.write(baseline_path, violations)
        print(
            f"baseline {baseline_path} updated: {count} accepted finding(s)",
            file=sys.stderr,
        )
        return 0

    suppressed = 0
    if args.baseline is not None:
        try:
            baseline = Baseline.load(args.baseline)
        except (ValueError, OSError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return 2
        before = len(violations)
        violations = baseline.filter(violations)
        suppressed = before - len(violations)

    if args.sarif is not None:
        write_sarif(args.sarif, violations, rules, root=Path.cwd())

    for violation in violations:
        print(violation.render())
    if not args.quiet:
        rule_word = "rule" if len(checker.rules) == 1 else "rules"
        summary = (
            f"checked {files_checked} files against {len(checker.rules)} "
            f"{rule_word}: {len(violations)} violation(s)"
        )
        if suppressed:
            summary += f" ({suppressed} baselined)"
        print(summary, file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
