"""Command-line front end: ``python -m tools.checkers [paths...]``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from collections.abc import Sequence

from .engine import Checker, CheckerError, all_rules, get_rule


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.checkers",
        description="CLUSEQ repo-specific AST invariant checks (CLQ rules)",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        default=["src/repro"],
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the known rules and exit",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the summary line (violations still print)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.summary}")
        return 0

    if args.select:
        try:
            rules = [get_rule(r.strip()) for r in args.select.split(",") if r.strip()]
        except KeyError as exc:
            parser.error(str(exc.args[0]))
        if not rules:
            parser.error("--select given but no rule ids parsed")
    else:
        rules = all_rules()

    targets: list[Path] = []
    for raw in args.targets:
        path = Path(raw)
        if not path.exists():
            parser.error(f"no such file or directory: {raw}")
        targets.append(path)

    checker = Checker(rules)
    try:
        violations, files_checked = checker.check_targets(targets)
    except CheckerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    for violation in violations:
        print(violation.render())
    if not args.quiet:
        rule_word = "rule" if len(checker.rules) == 1 else "rules"
        print(
            f"checked {files_checked} files against {len(checker.rules)} "
            f"{rule_word}: {len(violations)} violation(s)",
            file=sys.stderr,
        )
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
