"""Pass 1: the repo-wide symbol table for whole-program rules.

The v2 analyzer runs in two passes. Before any rule executes,
:class:`ProgramIndex.build` walks every file in the run and records the
cross-file facts the flow-sensitive rules need:

* **Classes** — per class: its methods, which of them bump a
  ``_version`` attribute (the cache-invalidation contract of
  ``ProbabilisticSuffixTree``, CLQ007), which call ``os.fsync`` (the
  durability discipline of ``StreamJournal``, CLQ008), and whether the
  class owns its resource lifetimes (``close``/``__exit__``, CLQ009).
* **Approved durability writers** — module-level functions that fsync
  what they write; a file write in ``repro.stream`` outside one of
  these (or outside an fsync-disciplined class) is a CLQ008 finding.
* **The declared telemetry-name registry** — parsed from the module
  named ``*.obs.names`` (``repro/obs/names.py``): the exact metric,
  span, kernel, cache and latency names the codebase is allowed to
  emit, plus prefixes for dynamic families. CLQ010 resolves every
  literal name at every emission site against this registry.

The index is attached to each :class:`~tools.checkers.engine.FileContext`
as ``context.program`` before pass 2 (the rules) runs. Single-file
checks get an index over just that file, so the class-level facts still
resolve; the name registry is simply absent then and CLQ010 stays
quiet.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .cfg import walk_element

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import FileContext

__all__ = ["ClassInfo", "FunctionInfo", "NameRegistry", "ProgramIndex"]

#: Registry-module constants recognised in ``repro/obs/names.py``.
_REGISTRY_FIELDS = {
    "METRICS": "metrics",
    "METRIC_PREFIXES": "metric_prefixes",
    "SPANS": "spans",
    "SPAN_PREFIXES": "span_prefixes",
    "KERNELS": "kernels",
    "CACHES": "caches",
    "LATENCIES": "latencies",
}


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` attribute chains as a dotted string (else ``None``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _writes_attr(func: ast.FunctionDef | ast.AsyncFunctionDef, attr: str) -> bool:
    """Whether *func* assigns (or aug-assigns) ``<expr>.<attr>`` anywhere."""
    for stmt in func.body:
        for node in walk_element(stmt):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Attribute) and target.attr == attr:
                    return True
                if isinstance(target, ast.Tuple):
                    for element in target.elts:
                        if isinstance(element, ast.Attribute) and element.attr == attr:
                            return True
    return False


def calls_fsync(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Whether *func* contains an ``os.fsync(...)`` (or bare ``fsync``) call."""
    for stmt in func.body:
        for node in walk_element(stmt):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is not None and name.split(".")[-1] == "fsync":
                    return True
    return False


@dataclass
class FunctionInfo:
    """One module-level function, with the facts CLQ008 cares about."""

    name: str
    module: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    fsyncs: bool


@dataclass
class ClassInfo:
    """One class definition, with the facts the flow rules care about."""

    name: str
    module: str
    node: ast.ClassDef
    methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(
        default_factory=dict
    )
    #: Methods that bump ``self._version`` — the approved invalidators.
    version_bumpers: set[str] = field(default_factory=set)
    #: Methods that call ``os.fsync`` — the class flushes what it writes.
    fsync_methods: set[str] = field(default_factory=set)
    #: The class manages handle lifetime (``close`` or ``__exit__``).
    manages_resources: bool = False

    @property
    def qualname(self) -> str:
        return f"{self.module}.{self.name}"


@dataclass
class NameRegistry:
    """Declared telemetry names parsed from ``repro/obs/names.py``."""

    module: str = ""
    metrics: frozenset[str] = frozenset()
    metric_prefixes: tuple[str, ...] = ()
    spans: frozenset[str] = frozenset()
    span_prefixes: tuple[str, ...] = ()
    kernels: frozenset[str] = frozenset()
    caches: frozenset[str] = frozenset()
    latencies: frozenset[str] = frozenset()

    def resolves_metric(self, name: str) -> bool:
        return name in self.metrics or name.startswith(self.metric_prefixes or ("\0",))

    def resolves_metric_prefix(self, head: str) -> bool:
        """Whether an f-string head can still resolve to a declared name."""
        if any(head.startswith(p) for p in self.metric_prefixes):
            return True
        return any(m.startswith(head) for m in self.metrics)

    def resolves_span(self, name: str) -> bool:
        return name in self.spans or name.startswith(self.span_prefixes or ("\0",))

    def resolves_span_prefix(self, head: str) -> bool:
        if any(head.startswith(p) for p in self.span_prefixes):
            return True
        return any(s.startswith(head) for s in self.spans)


def _literal_strings(node: ast.expr) -> frozenset[str]:
    """String constants inside a set/frozenset/tuple/list literal."""
    values: set[str] = set()
    if isinstance(node, ast.Call):  # frozenset({...}) / frozenset((...))
        if node.args:
            return _literal_strings(node.args[0])
        return frozenset()
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                values.add(element.value)
    return frozenset(values)


def _parse_name_registry(module: str, tree: ast.Module) -> NameRegistry:
    registry = NameRegistry(module=module)
    for stmt in tree.body:
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target, value = stmt.target, stmt.value
        if not isinstance(target, ast.Name) or value is None:
            continue
        attr = _REGISTRY_FIELDS.get(target.id)
        if attr is None:
            continue
        names = _literal_strings(value)
        if attr in ("metric_prefixes", "span_prefixes"):
            setattr(registry, attr, tuple(sorted(names)))
        else:
            setattr(registry, attr, names)
    return registry


class ProgramIndex:
    """The pass-1 symbol table shared by every pass-2 rule."""

    def __init__(self) -> None:
        #: ``module.Class`` → :class:`ClassInfo`.
        self.classes: dict[str, ClassInfo] = {}
        #: ``(module, function)`` → :class:`FunctionInfo`.
        self.functions: dict[tuple[str, str], FunctionInfo] = {}
        #: Declared telemetry names; ``None`` when no registry module
        #: was part of the analyzed file set.
        self.names: NameRegistry | None = None
        #: Modules indexed, for cheap membership tests.
        self.modules: set[str] = set()

    # -- construction ------------------------------------------------------------

    @classmethod
    def build(cls, contexts: list["FileContext"]) -> "ProgramIndex":
        index = cls()
        for context in contexts:
            index.add_file(context.module, context.tree)
        return index

    def add_file(self, module: str, tree: ast.Module) -> None:
        self.modules.add(module)
        if module == "repro.obs.names" or module.endswith(".obs.names"):
            self.names = _parse_name_registry(module, tree)
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[(module, stmt.name)] = FunctionInfo(
                    name=stmt.name,
                    module=module,
                    node=stmt,
                    fsyncs=calls_fsync(stmt),
                )
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(module, stmt)

    def _add_class(self, module: str, node: ast.ClassDef) -> None:
        info = ClassInfo(name=node.name, module=module, node=node)
        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            info.methods[stmt.name] = stmt
            if _writes_attr(stmt, "_version"):
                info.version_bumpers.add(stmt.name)
            if calls_fsync(stmt):
                info.fsync_methods.add(stmt.name)
            if stmt.name in ("close", "__exit__", "__del__"):
                info.manages_resources = True
        self.classes[info.qualname] = info

    # -- queries -----------------------------------------------------------------

    def classes_in_module(self, module: str) -> list[ClassInfo]:
        return [c for c in self.classes.values() if c.module == module]

    def function_fsyncs(self, module: str, name: str) -> bool:
        info = self.functions.get((module, name))
        return info is not None and info.fsyncs
