"""Rule engine: file discovery, suppression comments, and the runner.

The engine is deliberately dependency-free (stdlib only) so the gate
can run on a bare CI image before the package's own dependencies are
installed.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable, Iterator, Sequence

from .symbols import ProgramIndex

#: ``# cluseq: ignore`` or ``# cluseq: ignore[CLQ001,CLQ005]``.
_SUPPRESSION_RE = re.compile(
    r"#\s*cluseq:\s*ignore(?:\[(?P<rules>[A-Z0-9,\s]+)\])?"
)

#: Directory/file name markers of test and benchmark code (exempt from
#: the determinism rule, which is about library behaviour).
_TEST_DIR_NAMES = frozenset({"tests", "test", "benchmarks", "benches"})


@dataclass(frozen=True)
class Violation:
    """One rule finding at a specific source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


class CheckerError(RuntimeError):
    """Raised when a target file cannot be analyzed at all."""


def module_name_for(path: Path) -> str:
    """Best-effort dotted module name for *path*.

    Everything after a ``src`` path component is taken as the package
    path (``src/repro/core/pst.py`` → ``repro.core.pst``); otherwise
    the parts after the last ``site-packages``-style anchor or simply
    the file stem chain is used. ``__init__.py`` maps to its package.
    """
    parts = list(path.parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    else:
        # Fall back to the longest trailing run of identifier-like parts.
        tail: list[str] = []
        for part in reversed(parts):
            name = part[:-3] if part.endswith(".py") else part
            if not name.isidentifier():
                break
            tail.append(part)
        parts = list(reversed(tail)) or [path.name]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def is_test_code(path: Path) -> bool:
    """Whether *path* is test or benchmark code (relaxed determinism)."""
    if any(part in _TEST_DIR_NAMES for part in path.parts[:-1]):
        return True
    name = path.name
    return (
        name.startswith("test_")
        or name.startswith("bench_")
        or name == "conftest.py"
    )


def parse_suppressions(source: str) -> dict[int, set[str] | None]:
    """Map line number → suppressed rule ids (``None`` = all rules)."""
    suppressions: dict[int, set[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESSION_RE.search(line)
        if not match:
            continue
        rules = match.group("rules")
        if rules is None:
            suppressions[lineno] = None
        else:
            ids = {r.strip() for r in rules.split(",") if r.strip()}
            existing = suppressions.get(lineno)
            if lineno in suppressions and existing is None:
                continue  # a bare ignore already covers everything
            suppressions[lineno] = (existing or set()) | ids
    return suppressions


@dataclass
class FileContext:
    """Everything a rule needs to know about one source file."""

    path: Path
    source: str
    tree: ast.Module
    module: str
    suppressions: dict[int, set[str] | None] = field(default_factory=dict)
    #: The pass-1 whole-program symbol table. Populated by the checker
    #: before rules run; whole-program rules (CLQ007–CLQ010) read it,
    #: per-file rules ignore it.
    program: "ProgramIndex | None" = None

    @classmethod
    def from_path(cls, path: Path, module: str | None = None) -> "FileContext":
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise CheckerError(f"cannot read {path}: {exc}") from exc
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise CheckerError(f"cannot parse {path}: {exc}") from exc
        return cls(
            path=path,
            source=source,
            tree=tree,
            module=module if module is not None else module_name_for(path),
            suppressions=parse_suppressions(source),
        )

    @property
    def package(self) -> str:
        """The package containing this module (itself for __init__)."""
        if self.path.name == "__init__.py":
            return self.module
        return self.module.rpartition(".")[0]

    @property
    def is_test_code(self) -> bool:
        return is_test_code(self.path)

    def in_package(self, prefix: str) -> bool:
        """Whether the module lives in *prefix* (or a subpackage)."""
        return self.module == prefix or self.module.startswith(prefix + ".")

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if line not in self.suppressions:
            return False
        rules = self.suppressions[line]
        return rules is None or rule_id in rules


class Rule:
    """Base class for pluggable checks.

    Subclasses set :attr:`rule_id` / :attr:`summary` and implement
    :meth:`check` yielding :class:`Violation` objects. Registration is
    via the :func:`register` decorator.
    """

    rule_id: str = ""
    summary: str = ""

    def check(self, context: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, context: FileContext, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            path=str(context.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            message=message,
        )


_REGISTRY: dict[str, Rule] = {}


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule instance to the global registry."""
    rule = rule_class()
    if not rule.rule_id:
        raise ValueError(f"{rule_class.__name__} has no rule_id")
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return rule_class


def all_rules() -> list[Rule]:
    _load_rules()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    _load_rules()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


def _load_rules() -> None:
    """Import the built-in rule modules (idempotent)."""
    from . import rules  # noqa: F401  (import side effect registers rules)


def iter_python_files(targets: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    seen: set[Path] = set()
    for target in targets:
        if target.is_dir():
            candidates: Iterable[Path] = sorted(target.rglob("*.py"))
        else:
            candidates = [target]
        for path in candidates:
            if "__pycache__" in path.parts:
                continue
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            yield path


class Checker:
    """Run a set of rules over files and collect violations."""

    def __init__(self, rules: Sequence[Rule] | None = None) -> None:
        self.rules: list[Rule] = list(rules) if rules is not None else all_rules()

    def check_file(self, path: Path, module: str | None = None) -> list[Violation]:
        context = FileContext.from_path(path, module=module)
        # Single-file mode still gets a (single-file) symbol table so
        # the class-level facts the flow rules need are available.
        context.program = ProgramIndex.build([context])
        return self.check_context(context)

    def check_context(self, context: FileContext) -> list[Violation]:
        found: list[Violation] = []
        for rule in self.rules:
            for violation in rule.check(context):
                if context.is_suppressed(violation.rule_id, violation.line):
                    continue
                found.append(violation)
        found.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
        return found

    def check_targets(
        self, targets: Sequence[Path]
    ) -> tuple[list[Violation], int]:
        """Check every Python file under *targets*, in two passes.

        Pass 1 parses every file and builds the whole-program
        :class:`~tools.checkers.symbols.ProgramIndex`; pass 2 runs the
        rules with that index attached to every file context. Returns
        ``(violations, files_checked)``.
        """
        contexts = [FileContext.from_path(path) for path in iter_python_files(targets)]
        program = ProgramIndex.build(contexts)
        violations: list[Violation] = []
        for context in contexts:
            context.program = program
            violations.extend(self.check_context(context))
        return violations, len(contexts)
