"""Intra-procedural control-flow graphs for the flow-sensitive rules.

A :class:`CFG` is built from one ``ast.FunctionDef`` and decomposes the
body into basic blocks of *elements*. An element is a single AST node —
either a simple statement (``Assign``, ``Expr``, …) or the control
expression of a compound statement (an ``If``/``While`` test, a ``For``
iterable, a ``with`` item). Compound statement *bodies* become separate
blocks wired by edges, so every AST node belongs to exactly one block
and rules can scan elements without double-counting.

Modelled control flow:

* ``if``/``elif``/``else`` — branch and join blocks.
* ``while``/``for`` — header, body, ``else`` clause, ``break`` and
  ``continue`` edges (a ``while True:`` header has no fall-through
  exit edge).
* ``return`` — edge to the virtual :attr:`CFG.exit` block.
* ``raise`` / ``assert`` — edge to the virtual :attr:`CFG.raise_exit`
  block (``assert`` additionally falls through).
* ``try``/``except``/``else`` — every element of the ``try`` body gets
  an edge to each handler entry (any statement may raise); a ``raise``
  in the body goes to the handlers *and* to the raise exit (it may not
  match any clause).
* ``try``/``finally`` — the ``finally`` body is *duplicated* per exit
  kind (fall-through, return, raise, break, continue), so a path that
  returns out of the ``try`` still flows through its own copy of the
  ``finally`` elements. This keeps must-pass-through analyses precise.
* ``with`` — context expressions become elements; the body continues
  in the same block (exceptional exits of ``__exit__`` are not
  modelled).

Deliberately *not* modelled (documented analysis assumptions): implicit
exceptions from arbitrary expressions outside ``try`` blocks, and the
bodies of nested ``def``/``class`` statements (they execute on their
own activation, not on the enclosing function's paths — rules must not
walk into them either, see :func:`walk_element`).
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterator, Sequence

__all__ = ["Block", "CFG", "build_cfg", "walk_element", "element_matches"]

#: Statements whose nested bodies run on a separate activation.
_OPAQUE = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


class Block:
    """A basic block: a run of elements with shared control flow."""

    __slots__ = ("index", "elements", "succs", "preds", "kind")

    def __init__(self, index: int, kind: str = "normal") -> None:
        self.index = index
        self.elements: list[ast.AST] = []
        self.succs: list["Block"] = []
        self.preds: list["Block"] = []
        self.kind = kind

    def add_edge(self, succ: "Block") -> None:
        if succ not in self.succs:
            self.succs.append(succ)
            succ.preds.append(self)

    def __repr__(self) -> str:
        succs = [b.index for b in self.succs]
        return f"Block({self.index}, kind={self.kind!r}, n={len(self.elements)}, succs={succs})"


class CFG:
    """The control-flow graph of one function body.

    ``entry`` is the (element-less) start block; ``exit`` collects
    every normal termination (explicit ``return`` and falling off the
    end); ``raise_exit`` collects paths that leave via an uncaught
    ``raise``. Both exits are virtual: they carry no elements.
    """

    def __init__(self) -> None:
        self.blocks: list[Block] = []
        self.entry = self.new_block("entry")
        self.exit = self.new_block("exit")
        self.raise_exit = self.new_block("raise-exit")

    def new_block(self, kind: str = "normal") -> Block:
        block = Block(len(self.blocks), kind)
        self.blocks.append(block)
        return block

    def exits(self, include_raises: bool = True) -> list[Block]:
        out = [self.exit]
        if include_raises:
            out.append(self.raise_exit)
        return out

    def iter_elements(self) -> Iterator[tuple[Block, int, ast.AST]]:
        """Every ``(block, index, element)`` triple, in block order."""
        for block in self.blocks:
            for idx, element in enumerate(block.elements):
                yield block, idx, element


def walk_element(element: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested def/class bodies.

    The element itself is yielded even when it *is* a nested def (so a
    rule can still see decorators via ``element.decorator_list``), but
    nothing underneath it.
    """
    yield element
    if isinstance(element, _OPAQUE):
        return
    stack = list(ast.iter_child_nodes(element))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _OPAQUE):
            continue
        stack.extend(ast.iter_child_nodes(node))


def element_matches(element: ast.AST, predicate: Callable[[ast.AST], bool]) -> bool:
    """Whether any (non-nested-scope) node of *element* satisfies *predicate*."""
    return any(predicate(node) for node in walk_element(element))


class _Targets:
    """Where abrupt statements jump to, given the current nesting."""

    __slots__ = ("on_return", "on_raise", "on_break", "on_continue", "handlers")

    def __init__(
        self,
        on_return: Block,
        on_raise: Block,
        on_break: Block | None = None,
        on_continue: Block | None = None,
        handlers: Sequence[Block] = (),
    ) -> None:
        self.on_return = on_return
        self.on_raise = on_raise
        self.on_break = on_break
        self.on_continue = on_continue
        #: Entry blocks of the active ``except`` clauses: every element
        #: inside the corresponding ``try`` body may jump here.
        self.handlers = list(handlers)

    def replaced(self, **kwargs: object) -> "_Targets":
        new = _Targets(self.on_return, self.on_raise, self.on_break, self.on_continue)
        new.handlers = list(self.handlers)
        for key, value in kwargs.items():
            setattr(new, key, value)
        return new


class _Builder:
    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg

    # -- helpers ---------------------------------------------------------------

    def _emit(self, block: Block, node: ast.AST, targets: _Targets) -> Block:
        """Append one element; split the block when handler edges apply."""
        block.elements.append(node)
        if targets.handlers:
            for handler in targets.handlers:
                block.add_edge(handler)
            nxt = self.cfg.new_block()
            block.add_edge(nxt)
            return nxt
        return block

    def _is_const_true(self, test: ast.expr) -> bool:
        return isinstance(test, ast.Constant) and bool(test.value) is True

    # -- statement dispatch ------------------------------------------------------

    def build_body(
        self, stmts: Sequence[ast.stmt], current: Block, targets: _Targets
    ) -> Block:
        """Wire *stmts* starting at *current*; return the fall-through block."""
        for stmt in stmts:
            current = self.build_stmt(stmt, current, targets)
        return current

    def build_stmt(self, stmt: ast.stmt, current: Block, targets: _Targets) -> Block:
        cfg = self.cfg
        if isinstance(stmt, ast.Return):
            current = self._emit(current, stmt, targets)
            current.add_edge(targets.on_return)
            return cfg.new_block("dead")
        if isinstance(stmt, ast.Raise):
            current = self._emit(current, stmt, targets)
            # May match an active handler, or propagate out.
            for handler in targets.handlers:
                current.add_edge(handler)
            current.add_edge(targets.on_raise)
            return cfg.new_block("dead")
        if isinstance(stmt, ast.Break):
            assert targets.on_break is not None, "break outside loop"
            current.add_edge(targets.on_break)
            return cfg.new_block("dead")
        if isinstance(stmt, ast.Continue):
            assert targets.on_continue is not None, "continue outside loop"
            current.add_edge(targets.on_continue)
            return cfg.new_block("dead")
        if isinstance(stmt, ast.Assert):
            current = self._emit(current, stmt, targets)
            current.add_edge(targets.on_raise)
            return current
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, current, targets)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._build_loop(stmt, current, targets)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                current = self._emit(current, item.context_expr, targets)
                if item.optional_vars is not None:
                    current = self._emit(current, item.optional_vars, targets)
            return self.build_body(stmt.body, current, targets)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, current, targets)
        # Simple statement (including nested def/class, kept opaque).
        return self._emit(current, stmt, targets)

    # -- compound statements -----------------------------------------------------

    def _build_if(self, stmt: ast.If, current: Block, targets: _Targets) -> Block:
        cfg = self.cfg
        current = self._emit(current, stmt.test, targets)
        after = cfg.new_block()
        then_entry = cfg.new_block()
        current.add_edge(then_entry)
        then_end = self.build_body(stmt.body, then_entry, targets)
        then_end.add_edge(after)
        if stmt.orelse:
            else_entry = cfg.new_block()
            current.add_edge(else_entry)
            else_end = self.build_body(stmt.orelse, else_entry, targets)
            else_end.add_edge(after)
        else:
            current.add_edge(after)
        return after

    def _build_loop(
        self, stmt: ast.While | ast.For | ast.AsyncFor, current: Block, targets: _Targets
    ) -> Block:
        cfg = self.cfg
        header = cfg.new_block("loop-header")
        current.add_edge(header)
        if isinstance(stmt, ast.While):
            header.elements.append(stmt.test)
            never_exits = self._is_const_true(stmt.test)
        else:
            header.elements.append(stmt.iter)
            header.elements.append(stmt.target)
            never_exits = False
        after = cfg.new_block()
        body_entry = cfg.new_block()
        header.add_edge(body_entry)
        body_targets = targets.replaced(on_break=after, on_continue=header)
        body_end = self.build_body(stmt.body, body_entry, body_targets)
        body_end.add_edge(header)
        if not never_exits:
            if stmt.orelse:
                else_entry = cfg.new_block()
                header.add_edge(else_entry)
                else_end = self.build_body(stmt.orelse, else_entry, targets)
                else_end.add_edge(after)
            else:
                header.add_edge(after)
        return after

    def _build_try(self, stmt: ast.Try, current: Block, targets: _Targets) -> Block:
        cfg = self.cfg
        after = cfg.new_block()

        if stmt.finalbody:
            # One copy of the finally body per way of leaving the try —
            # each copy rejoins the *outer* targets, so "return inside
            # try" still flows through finally elements before exit.
            def finally_to(dest: Block) -> Block:
                entry = cfg.new_block("finally")
                end = self.build_body(stmt.finalbody, entry, targets)
                end.add_edge(dest)
                return entry

            inner = targets.replaced(
                on_return=finally_to(targets.on_return),
                on_raise=finally_to(targets.on_raise),
            )
            if targets.on_break is not None:
                inner = inner.replaced(on_break=finally_to(targets.on_break))
            if targets.on_continue is not None:
                inner = inner.replaced(on_continue=finally_to(targets.on_continue))
            normal_exit = finally_to(after)
        else:
            inner = targets
            normal_exit = after

        handler_entries: list[Block] = []
        for handler in stmt.handlers:
            entry = cfg.new_block("handler")
            if handler.type is not None:
                entry.elements.append(handler.type)
            handler_entries.append(entry)
        # Handler bodies run outside the try protection (a raise there
        # propagates), but inside the finally scope.
        for handler, entry in zip(stmt.handlers, handler_entries):
            end = self.build_body(handler.body, entry, inner)
            end.add_edge(normal_exit)

        body_targets = inner.replaced(handlers=inner.handlers + handler_entries)
        body_entry = cfg.new_block()
        current.add_edge(body_entry)
        body_end = self.build_body(stmt.body, body_entry, body_targets)
        # ``else`` runs only on normal completion, unprotected.
        body_end = self.build_body(stmt.orelse, body_end, inner)
        body_end.add_edge(normal_exit)
        return after


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the CFG of *func*'s body (nested defs stay opaque)."""
    cfg = CFG()
    targets = _Targets(on_return=cfg.exit, on_raise=cfg.raise_exit)
    end = _Builder(cfg).build_body(func.body, cfg.entry, targets)
    end.add_edge(cfg.exit)  # falling off the end returns None
    return cfg
