"""Violation baselines: adopt-now, ratchet-later suppression files.

A baseline lets the v2 rules land on a codebase with pre-existing
findings without either fixing everything in one PR or littering the
source with ``# cluseq: ignore`` comments. The workflow:

1. ``python -m tools.checkers --update-baseline`` writes every current
   finding's fingerprint to the baseline file.
2. ``python -m tools.checkers --baseline tools/checkers/baseline.json``
   (the CI invocation) reports only findings *not* in the baseline —
   new debt fails the gate, old debt does not.
3. Fixing a baselined finding and re-running ``--update-baseline``
   shrinks the file; the diff is the ratchet.

Fingerprints are ``sha256(rule_id | normalized-path | stripped source
line)``. Using the line's *text* instead of its *number* keeps
fingerprints stable across unrelated edits above the finding — the
same trick GitHub code scanning uses for alert dedup. Two identical
lines in one file share a fingerprint; that collision is acceptable
for a suppression mechanism (it can only over-suppress twins of a
known finding, never hide a novel rule hit).

The core gate (`make invariants`) intentionally runs with the
committed baseline, which is **empty** for ``src/repro`` — the claim
"the core tree is CLQ-clean" stays checkable from the file itself.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from .engine import Violation

__all__ = ["Baseline", "fingerprint"]

_FORMAT_VERSION = 1


def _normalize_path(path: str) -> str:
    return Path(path).as_posix()


def fingerprint(violation: Violation, source_line: str) -> str:
    """Stable identity for one finding (rule, file, line *text*)."""
    payload = "\x1f".join(
        [violation.rule_id, _normalize_path(violation.path), source_line.strip()]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _source_line(violation: Violation) -> str:
    try:
        lines = Path(violation.path).read_text(encoding="utf-8").splitlines()
        return lines[violation.line - 1]
    except (OSError, IndexError):
        return ""


class Baseline:
    """A set of known-finding fingerprints, with provenance comments."""

    def __init__(self, fingerprints: set[str] | None = None) -> None:
        self.fingerprints: set[str] = set(fingerprints or ())

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} in {path}"
            )
        return cls({entry["fingerprint"] for entry in data.get("findings", [])})

    def filter(self, violations: list[Violation]) -> list[Violation]:
        """Violations not covered by the baseline."""
        return [
            v for v in violations if fingerprint(v, _source_line(v)) not in self.fingerprints
        ]

    @staticmethod
    def write(path: Path, violations: list[Violation]) -> int:
        """Write *violations* as the new baseline; returns the count."""
        findings = [
            {
                "fingerprint": fingerprint(v, _source_line(v)),
                "rule": v.rule_id,
                "path": _normalize_path(v.path),
                "message": v.message,
            }
            for v in violations
        ]
        findings.sort(key=lambda f: (f["path"], f["rule"], f["fingerprint"]))
        payload = {
            "version": _FORMAT_VERSION,
            "comment": (
                "Accepted pre-existing findings; shrink via "
                "`python -m tools.checkers --update-baseline`. "
                "New findings are never auto-accepted."
            ),
            "findings": findings,
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        return len(findings)
