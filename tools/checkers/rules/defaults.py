"""CLQ004 — mutable default arguments.

A mutable default (``def f(x=[])``) is evaluated once at function
definition time and shared across every call — state leaks between
clustering runs, which is exactly the class of bug a reproduction
pipeline cannot afford. Use ``None`` and materialize inside the body.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import Union

from ..engine import FileContext, Rule, Violation, register

#: Zero-argument constructor calls that produce fresh mutable state.
_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "Counter", "defaultdict", "OrderedDict", "deque"}
)

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        return name in _MUTABLE_FACTORIES
    return False


@register
class MutableDefaultRule(Rule):
    rule_id = "CLQ004"
    summary = "no mutable default arguments"

    def check(self, context: FileContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_literal(default):
                    name = getattr(node, "name", "<lambda>")
                    yield self.violation(
                        context,
                        default,
                        f"mutable default argument in {name}() is shared "
                        "across calls — default to None and build inside",
                    )
