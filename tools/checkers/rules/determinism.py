"""CLQ002 — determinism.

Every number the pipeline reports must be reproducible from an explicit
seed: the paper's tables are only comparable across runs if the RNG
state flows from a seed or a caller-supplied ``np.random.Generator``.
This rule bans the three ways hidden entropy sneaks in:

* ``np.random.default_rng()`` called with no seed,
* the legacy numpy global-state API (``np.random.seed``,
  ``np.random.rand``, …),
* the stdlib ``random`` module's global functions (``random.random``,
  ``random.shuffle``, …) — ``random.Random(seed)`` instances are fine.

Test and benchmark files are exempt (fixtures may use ambient
randomness when the assertion is statistical).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..engine import FileContext, Rule, Violation, register

#: numpy.random attributes that are *not* global-state entry points.
_NP_RANDOM_SAFE = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
        "RandomState",  # flagged separately below when *called*
    }
)

#: stdlib random attributes that do not touch the hidden global state.
_RANDOM_SAFE = frozenset({"Random", "SystemRandom", "getstate", "setstate"})


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` attribute chains as a dotted string (else ``None``)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _ImportTracker(ast.NodeVisitor):
    """Record local names bound to the stdlib/numpy random modules."""

    def __init__(self) -> None:
        self.random_aliases: set[str] = set()
        self.np_random_aliases: set[str] = set()
        self.numpy_aliases: set[str] = set()
        self.from_random_names: set[str] = set()

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".", 1)[0]
            if alias.name == "random":
                self.random_aliases.add(bound)
            elif alias.name == "numpy":
                self.numpy_aliases.add(bound)
            elif alias.name == "numpy.random":
                if alias.asname:
                    self.np_random_aliases.add(alias.asname)
                else:
                    self.numpy_aliases.add("numpy")

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:
            return
        if node.module == "random":
            for alias in node.names:
                if alias.name not in _RANDOM_SAFE:
                    self.from_random_names.add(alias.asname or alias.name)
        elif node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self.np_random_aliases.add(alias.asname or "random")
        elif node.module == "numpy.random":
            for alias in node.names:
                if alias.name == "default_rng":
                    # calls are checked by name below
                    self.from_random_names.discard(alias.asname or alias.name)


@register
class DeterminismRule(Rule):
    rule_id = "CLQ002"
    summary = "no unseeded default_rng() or global-state random calls"

    def check(self, context: FileContext) -> Iterator[Violation]:
        if context.is_test_code:
            return
        tracker = _ImportTracker()
        tracker.visit(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            violation = self._check_call(context, node, tracker)
            if violation is not None:
                yield violation

    def _check_call(
        self, context: FileContext, node: ast.Call, tracker: _ImportTracker
    ) -> Violation | None:
        func = node.func
        dotted = _dotted(func)

        # Unseeded default_rng() / RandomState(), however it was reached.
        if isinstance(func, ast.Attribute) and func.attr in (
            "default_rng",
            "RandomState",
        ):
            base = _dotted(func.value)
            is_np_random = base is not None and (
                base in tracker.np_random_aliases
                or any(
                    base == f"{np_alias}.random"
                    for np_alias in tracker.numpy_aliases
                )
            )
            if is_np_random and not node.args and not node.keywords:
                return self.violation(
                    context,
                    node,
                    f"unseeded np.random.{func.attr}() — pass an explicit "
                    "seed or accept an np.random.Generator parameter",
                )
            if is_np_random:
                return None
        if (
            isinstance(func, ast.Name)
            and func.id == "default_rng"
            and not node.args
            and not node.keywords
        ):
            return self.violation(
                context,
                node,
                "unseeded default_rng() — pass an explicit seed or accept "
                "an np.random.Generator parameter",
            )

        # Legacy numpy global-state API: np.random.<fn>(...).
        if dotted is not None:
            parts = dotted.split(".")
            if len(parts) >= 2:
                base, attr = ".".join(parts[:-1]), parts[-1]
                is_np_random = base in tracker.np_random_aliases or any(
                    base == f"{np_alias}.random"
                    for np_alias in tracker.numpy_aliases
                )
                if is_np_random and attr not in _NP_RANDOM_SAFE:
                    return self.violation(
                        context,
                        node,
                        f"np.random.{attr}() uses hidden global RNG state — "
                        "use a seeded np.random.Generator instead",
                    )
                if (
                    len(parts) == 2
                    and parts[0] in tracker.random_aliases
                    and attr not in _RANDOM_SAFE
                ):
                    return self.violation(
                        context,
                        node,
                        f"random.{attr}() uses hidden global RNG state — "
                        "use random.Random(seed) or np.random.Generator",
                    )

        # ``from random import shuffle`` style calls.
        if isinstance(func, ast.Name) and func.id in tracker.from_random_names:
            return self.violation(
                context,
                node,
                f"{func.id}() (from the random module) uses hidden global "
                "RNG state — use random.Random(seed) or np.random.Generator",
            )
        return None
