"""CLQ001 — import layering.

The CLUSEQ hot path (``repro.core``) must stay dependency-light so a
production deployment can ship the clustering engine without the
experiment harnesses, the CLI, or the evaluation stack; and the
observability layer (``repro.obs``) must import *only* the standard
library so instrumentation can never drag numpy/scipy into a context
that just wants a logger.
"""

from __future__ import annotations

import ast
import sys
from collections.abc import Iterator

from ..engine import FileContext, Rule, Violation, register

#: Packages the core layer must never depend on.
CORE_FORBIDDEN = (
    "repro.experiments",
    "repro.cli",
    "repro.evaluation",
    "repro.stream",
    "repro.serve",
    "repro.shard",
)

#: Top-level modules the obs layer may import besides the stdlib.
OBS_ALLOWED_PREFIX = "repro.obs"

#: ``repro.*`` prefixes the scoring-backend subpackage may depend on —
#: the core layer it accelerates, the shared typing aliases, and obs
#: for counters. Backends are a *leaf* of core: letting them reach
#: into sequences/stream/evaluation would quietly invert the layering
#: the rest of this rule protects.
BACKENDS_ALLOWED_PREFIXES = (
    "repro.core",
    "repro.typing",
    "repro.obs",
)

#: ``repro.*`` prefixes the stream layer may depend on — the batch
#: engine and everything below it, never the CLI/experiments/evaluation
#: stack above.
STREAM_ALLOWED_PREFIXES = (
    "repro.stream",
    "repro.core",
    "repro.sequences",
    "repro.obs",
    "repro.typing",
)

#: ``repro.*`` prefixes the serving layer may depend on — everything
#: below it (engine, stream checkpoints, sequences, obs, typing) but
#: never the CLI/experiments/evaluation stack beside it. Nothing in
#: the engine imports ``repro.serve`` back (CORE_FORBIDDEN plus the
#: stream/backends/obs allowlists, which never listed it).
SERVE_ALLOWED_PREFIXES = (
    "repro.serve",
    "repro.core",
    "repro.stream",
    "repro.sequences",
    "repro.obs",
    "repro.typing",
)

#: ``repro.*`` prefixes the sharding layer may depend on — the stream
#: engine it scales out and everything below it. The CLI imports
#: ``repro.shard``; nothing below shard may import back up into it
#: (``repro.shard`` is in CORE_FORBIDDEN and absent from the
#: stream/serve/backends allowlists).
SHARD_ALLOWED_PREFIXES = (
    "repro.shard",
    "repro.stream",
    "repro.core",
    "repro.sequences",
    "repro.obs",
    "repro.typing",
)

if sys.version_info >= (3, 10):
    _STDLIB = frozenset(sys.stdlib_module_names)
else:  # pragma: no cover - py39 fallback for the CI matrix
    import distutils.sysconfig
    import os

    _std_dir = distutils.sysconfig.get_python_lib(standard_lib=True)
    _names = {"sys", "builtins", "itertools", "time", "math", "gc", "marshal"}
    for _entry in os.listdir(_std_dir):
        if _entry.endswith(".py"):
            _names.add(_entry[:-3])
        elif "." not in _entry:
            _names.add(_entry)
    _STDLIB = frozenset(_names)


def _absolute_targets(
    node: ast.stmt, package: str
) -> list[tuple[str, ast.stmt]]:
    """Absolute dotted module names a statement imports."""
    targets: list[tuple[str, ast.stmt]] = []
    if isinstance(node, ast.Import):
        for alias in node.names:
            targets.append((alias.name, node))
    elif isinstance(node, ast.ImportFrom):
        if node.level == 0:
            base = node.module or ""
        else:
            # Resolve ``from ..x import y`` against the file's package.
            parts = package.split(".") if package else []
            if node.level - 1 > 0:
                parts = parts[: -(node.level - 1)] if node.level - 1 <= len(parts) else []
            base = ".".join(parts)
            if node.module:
                base = f"{base}.{node.module}" if base else node.module
        if base:
            targets.append((base, node))
        else:
            # ``from . import similarity`` — each name is a submodule.
            for alias in node.names:
                targets.append(
                    (f"{package}.{alias.name}" if package else alias.name, node)
                )
    return targets


@register
class ImportLayeringRule(Rule):
    rule_id = "CLQ001"
    summary = (
        "core must not import experiments/cli/evaluation/stream/serve/shard; "
        "core.backends only core/typing/obs; "
        "stream only core/sequences/obs; "
        "serve only core/stream/sequences/obs; "
        "shard only stream/core/sequences/obs; obs stdlib only"
    )

    def check(self, context: FileContext) -> Iterator[Violation]:
        in_core = context.in_package("repro.core")
        in_obs = context.in_package("repro.obs")
        in_stream = context.in_package("repro.stream")
        in_serve = context.in_package("repro.serve")
        in_shard = context.in_package("repro.shard")
        in_backends = context.in_package("repro.core.backends")
        if not (in_core or in_obs or in_stream or in_serve or in_shard):
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            for target, stmt in _absolute_targets(node, context.package):
                if in_core:
                    for forbidden in CORE_FORBIDDEN:
                        if target == forbidden or target.startswith(forbidden + "."):
                            yield self.violation(
                                context,
                                stmt,
                                f"repro.core must not import {target} "
                                "(layering: core -> obs/sequences only)",
                            )
                if in_backends:
                    top = target.split(".", 1)[0]
                    if top == "repro" and not any(
                        target == prefix or target.startswith(prefix + ".")
                        for prefix in BACKENDS_ALLOWED_PREFIXES
                    ):
                        yield self.violation(
                            context,
                            stmt,
                            f"repro.core.backends must not import {target} "
                            "(layering: backends -> core/typing/obs only)",
                        )
                if in_stream:
                    top = target.split(".", 1)[0]
                    if top == "repro" and not any(
                        target == prefix or target.startswith(prefix + ".")
                        for prefix in STREAM_ALLOWED_PREFIXES
                    ):
                        yield self.violation(
                            context,
                            stmt,
                            f"repro.stream must not import {target} "
                            "(layering: stream -> core/sequences/obs only)",
                        )
                if in_serve:
                    top = target.split(".", 1)[0]
                    if top == "repro" and not any(
                        target == prefix or target.startswith(prefix + ".")
                        for prefix in SERVE_ALLOWED_PREFIXES
                    ):
                        yield self.violation(
                            context,
                            stmt,
                            f"repro.serve must not import {target} "
                            "(layering: serve -> core/stream/sequences/obs "
                            "only)",
                        )
                if in_shard:
                    top = target.split(".", 1)[0]
                    if top == "repro" and not any(
                        target == prefix or target.startswith(prefix + ".")
                        for prefix in SHARD_ALLOWED_PREFIXES
                    ):
                        yield self.violation(
                            context,
                            stmt,
                            f"repro.shard must not import {target} "
                            "(layering: shard -> stream/core/sequences/obs "
                            "only)",
                        )
                if in_obs:
                    top = target.split(".", 1)[0]
                    if top != "repro" and top not in _STDLIB:
                        yield self.violation(
                            context,
                            stmt,
                            f"repro.obs may only import the stdlib, not {target}",
                        )
                    elif top == "repro" and not (
                        target == OBS_ALLOWED_PREFIX
                        or target.startswith(OBS_ALLOWED_PREFIX + ".")
                    ):
                        yield self.violation(
                            context,
                            stmt,
                            "repro.obs must not import the rest of the "
                            f"package ({target}) — obs is the bottom layer",
                        )
