"""CLQ005 — paper anchors on public core functions.

``repro.core`` exists to reproduce a specific paper, so every public
module-level function there must say *which* part of the paper it
implements — a section (``§5.2`` / ``Section 5``), equation, table,
figure, algorithm, or an explicit "paper" reference (the repo's
DESIGN notes count too). This keeps the implementation auditable
against the source: a reviewer can open the reference next to the code.

Only module-level ``def``s with public names are checked; methods,
private helpers (leading underscore) and dunders are exempt.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from ..engine import FileContext, Rule, Violation, register

#: What counts as a reference to the source paper.
ANCHOR_RE = re.compile(
    r"§"  # section sign, e.g. §3.1
    r"|\bSection\s+\d"
    r"|\bTable\s+\d"
    r"|\bFig(?:ure|\.)\s*\d"
    r"|\bEq(?:uation|\.)\s*\(?\d"
    r"|\bAlgorithm\b"
    r"|\bpaper\b"
    r"|\bDESIGN\b"
    r"|\bICDE\b",
    re.IGNORECASE,
)


@register
class PaperAnchorRule(Rule):
    rule_id = "CLQ005"
    summary = "public core functions need a paper-anchored docstring"

    def check(self, context: FileContext) -> Iterator[Violation]:
        if not context.in_package("repro.core"):
            return
        for node in context.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            docstring = ast.get_docstring(node)
            if docstring is None:
                yield self.violation(
                    context,
                    node,
                    f"public core function {node.name}() has no docstring "
                    "(must reference the paper section/equation/table it "
                    "implements)",
                )
            elif not ANCHOR_RE.search(docstring):
                yield self.violation(
                    context,
                    node,
                    f"docstring of {node.name}() does not reference the "
                    "paper (add a §/Table/Figure/Equation anchor)",
                )
