"""CLQ003 — float equality in the core layer.

The similarity measure works in the log domain (§3.1's product of
conditional-probability ratios becomes a sum of logs), where exact
float equality is never meaningful: two mathematically equal
similarities differ in the last ulp depending on summation order.
``==`` / ``!=`` against a float-typed expression in ``repro.core`` is
therefore a bug magnet; use ``math.isclose`` (or an explicit tolerance)
instead.

The analysis is syntactic — it flags comparisons where an operand is
*visibly* a float: a float literal, a ``float(...)`` / ``math.*``
call/constant, or arithmetic over such operands. Comparing against the
literal ``0.0`` sentinel is still flagged: core code uses explicit
tolerances even there.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..engine import FileContext, Rule, Violation, register

_MATH_CONSTANTS = frozenset({"inf", "nan", "pi", "e", "tau"})


def _is_floatish(node: ast.AST) -> bool:
    """Whether *node* is syntactically float-valued."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    if isinstance(node, ast.BinOp):
        # Any arithmetic with a float operand is float-valued; ``/`` is
        # float-valued regardless of its operands in Python 3.
        if isinstance(node.op, ast.Div):
            return True
        return _is_floatish(node.left) or _is_floatish(node.right)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id == "float":
            return True
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            if func.value.id == "math":
                return True
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        if node.value.id == "math" and node.attr in _MATH_CONSTANTS:
            return True
    return False


@register
class FloatEqualityRule(Rule):
    rule_id = "CLQ003"
    summary = "no ==/!= on float-typed expressions in repro.core"

    def check(self, context: FileContext) -> Iterator[Violation]:
        if not context.in_package("repro.core"):
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_floatish(left) or _is_floatish(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.violation(
                        context,
                        node,
                        f"float {symbol} comparison in core — use "
                        "math.isclose(a, b, rel_tol=..., abs_tol=...) "
                        "or an explicit tolerance",
                    )
                    break
