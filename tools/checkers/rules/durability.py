"""CLQ008 — durability protocol in ``repro.stream`` (flow-sensitive).

Crash recovery is bit-identical only because every durable byte in the
streaming subsystem moves through exactly two disciplined writers
(docs/STREAMING.md): the fsynced write-ahead journal and the
write→fsync→``os.replace`` atomic checkpoint. A bare
``open(path, "w")`` anywhere else in ``repro.stream`` is a torn-state
bug waiting for a crash, and a checkpoint-style helper that replaces
before it fsyncs can publish a file whose blocks never hit the disk.

Two checks, scoped to non-test ``repro.stream`` *and* ``repro.shard``
modules (the sharded coordinator persists its manifest, dispatch WAL
and router snapshot through the same protocol):

1. **Approved-writer containment.** Any write-mode ``open(...)`` /
   ``Path.open("w")`` — and any ``.write_text`` / ``.write_bytes``
   call, which cannot fsync at all — must sit inside an approved
   writer: a function that itself calls ``os.fsync``, or a method of a
   class with an fsync-disciplined method (``StreamJournal`` opens in
   ``_ensure_open`` and fsyncs in ``_write_line``; the shared handle
   makes that class-level discipline). The approved-writer registry
   comes from pass 1 (:class:`~tools.checkers.symbols.ProgramIndex`).

2. **Protocol ordering.** In every function that calls
   ``os.replace(...)``, an ``os.fsync(...)`` must have executed on
   *every* path from function entry to the replace (forward
   must-analysis over the CFG). An fsync that only happens on the
   profiled branch — or before an early return — does not count.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..cfg import build_cfg, walk_element
from ..dataflow import ForwardMust
from ..engine import FileContext, Rule, Violation, register
from ..symbols import calls_fsync, dotted_name

#: ``open`` mode strings that create or mutate the target file.
_WRITE_MODE_CHARS = frozenset("wax+")

#: Write calls that can never be fsynced (no handle is exposed).
_HANDLE_FREE_WRITERS = frozenset({"write_text", "write_bytes"})


def _write_mode(call: ast.Call) -> bool:
    """Whether *call* (an ``open``-like call) opens for writing."""
    mode: ast.expr | None = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return False  # default "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return any(c in _WRITE_MODE_CHARS for c in mode.value)
    return True  # dynamic mode: assume the worst


def _is_open_call(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name) and func.id == "open":
        return True
    if isinstance(func, ast.Attribute) and func.attr == "open":
        # Path.open / self.path.open; ``os.open`` is flag-based and
        # handled by the dynamic-mode fallback if ever used here.
        return True
    return False


def _is_os_call(node: ast.AST, attr: str) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func)
    return name is not None and name.split(".")[-1] == attr


def _iter_functions(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, ast.ClassDef | None]]:
    """Top-level functions and class methods, with their owning class."""
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt, None
        elif isinstance(stmt, ast.ClassDef):
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield sub, stmt


@register
class DurabilityRule(Rule):
    rule_id = "CLQ008"
    summary = (
        "stream/shard file writes only via fsync-disciplined helpers, "
        "fsync before os.replace"
    )

    def check(self, context: FileContext) -> Iterator[Violation]:
        if context.is_test_code or not (
            context.in_package("repro.stream")
            or context.in_package("repro.shard")
        ):
            return
        program = context.program
        for func, owner in _iter_functions(context.tree):
            fsync_here = calls_fsync(func)
            class_disciplined = False
            if owner is not None and program is not None:
                info = program.classes.get(f"{context.module}.{owner.name}")
                class_disciplined = bool(info and info.fsync_methods)
            approved = fsync_here or class_disciplined

            replace_sites: list[tuple[ast.Call, object, int]] = []
            cfg = build_cfg(func)
            for block, index, element in cfg.iter_elements():
                for node in walk_element(element):
                    if not isinstance(node, ast.Call):
                        continue
                    if _is_open_call(node) and _write_mode(node) and not approved:
                        yield self.violation(
                            context,
                            node,
                            "write-mode open() outside an approved durability "
                            "helper — route durable writes through the "
                            "journal/checkpoint helpers (write → fsync → "
                            "os.replace) so crash recovery stays bit-identical",
                        )
                    func_expr = node.func
                    if (
                        isinstance(func_expr, ast.Attribute)
                        and func_expr.attr in _HANDLE_FREE_WRITERS
                    ):
                        yield self.violation(
                            context,
                            node,
                            f".{func_expr.attr}() cannot be fsynced — open a "
                            "handle via the approved journal/checkpoint "
                            "helpers instead",
                        )
                    if _is_os_call(node, "replace"):
                        replace_sites.append((node, block, index))

            if replace_sites:
                forward = ForwardMust(cfg, lambda n: _is_os_call(n, "fsync"))
                for call, block, index in replace_sites:
                    if not forward.before(block, index):  # type: ignore[arg-type]
                        yield self.violation(
                            context,
                            call,
                            "os.replace() not preceded by os.fsync() on every "
                            "path — a crash can publish a checkpoint whose "
                            "data never reached the disk",
                        )
