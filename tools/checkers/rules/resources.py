"""CLQ009 — resource discipline (flow-sensitive).

Leaked file handles corrupt the streaming subsystem's durability story
(an unclosed journal handle keeps buffered bytes out of recovery),
leaked lock acquisitions deadlock the parallel scorer, and leaked
executors or shared-memory segments outlive the run (orphan worker
processes, stale ``/dev/shm`` files). Acquisitions are method calls
(``open``/``acquire``/``kernel``) and the constructors of known
resource-owning classes (executors, ``SharedMemory``,
``ScoringPool``). The rule checks every acquisition site against the
small set of ownership patterns the codebase sanctions:

* **``with`` item** — ``with open(p) as f:`` / ``with lock:``. The
  runtime releases on every path; nothing more to prove.
* **Local + close on all paths** — ``h = open(p)`` followed by a
  ``h.close()`` / ``h.release()`` that a backward must-analysis shows
  on *every* path to *every* exit, including raising ones. In practice
  that means ``try``/``finally`` (the CFG duplicates ``finally``
  bodies per exit kind, so straight-line closes that can be skipped by
  an early ``return`` or ``raise`` are correctly rejected).
* **Stored on a resource-managing class** — ``self._file = open(p)``
  where the owning class defines ``close``/``__exit__``/``__del__``
  (the exporter pattern); lifetime is the object's problem, and CLQ009
  checks the class *has* taken on that problem.
* **Ownership transfer** — ``return open(p)``, or a local handle that
  is returned (``repro.sequences.io`` hands handles to callers, who
  use ``with``).

Anything else — most commonly the inline leak
``open(p).read()`` / ``open(p, "w").write(...)`` — is a finding.

Profiles: inside the ``repro`` package the full analysis runs. For
test/benchmark code (and anything outside the package) only the
inline-leak check applies — fixtures may stash handles in locals that
pytest finalizers close, which the analysis cannot see.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..cfg import Block, build_cfg, walk_element
from ..dataflow import BackwardMust
from ..engine import FileContext, Rule, Violation, register

#: Method names that release an acquired resource.
_CLOSERS = frozenset({"close", "release", "__exit__"})

#: Attribute-call names that acquire a resource needing release
#: (``kernel`` is the profiler's timer context — unclosed, the timer
#: never stops and the telemetry ledger records garbage).
_ACQUIRERS = frozenset({"open", "acquire", "kernel"})

#: Constructors whose *instances* are the resource: executors own
#: worker processes, shared-memory segments own kernel-backed mappings,
#: scoring pools own both. Matched by class name whether called bare
#: (``ProcessPoolExecutor(...)``) or qualified
#: (``futures.ProcessPoolExecutor(...)``).
_CONSTRUCTOR_ACQUIRERS = frozenset(
    {
        "ProcessPoolExecutor",
        "ThreadPoolExecutor",
        "SharedMemory",
        "ScoringPool",
    }
)


def _is_acquisition(node: ast.AST) -> ast.Call | None:
    """The call if *node* acquires a handle/lock, else ``None``."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name) and (
        func.id == "open" or func.id in _CONSTRUCTOR_ACQUIRERS
    ):
        return node
    if isinstance(func, ast.Attribute) and (
        func.attr in _ACQUIRERS or func.attr in _CONSTRUCTOR_ACQUIRERS
    ):
        return node
    return None


def _binds_call(value: ast.expr | None, call: ast.Call) -> bool:
    """Whether *value* binds *call*'s result, unwrapping one ``IfExp``.

    ``pool = ScoringPool(w) if cond else None`` binds the pool to a
    name exactly like the unconditional spelling does; the conditional
    arm must not demote it to an (unbindable) inline leak.
    """
    if value is call:
        return True
    return isinstance(value, ast.IfExp) and (
        value.body is call or value.orelse is call
    )


def _with_item_exprs(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[int]:
    """``id()`` of every ``with``-item context expression in *func*."""
    ids: set[int] = set()
    for stmt in func.body:
        for node in walk_element(stmt):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    for sub in ast.walk(item.context_expr):
                        ids.add(id(sub))
    return ids


def _returned_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Local names whose value is (part of) some ``return`` expression."""
    names: set[str] = set()
    for stmt in func.body:
        for node in walk_element(stmt):
            if isinstance(node, ast.Return) and node.value is not None:
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
    return names


def _closes_name(node: ast.AST, name: str) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr in _CLOSERS
        and isinstance(func.value, ast.Name)
        and func.value.id == name
    )


def _iter_functions(tree: ast.Module) -> Iterator[
    tuple[ast.FunctionDef | ast.AsyncFunctionDef, ast.ClassDef | None]
]:
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt, None
        elif isinstance(stmt, ast.ClassDef):
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield sub, stmt


@register
class ResourceDisciplineRule(Rule):
    rule_id = "CLQ009"
    summary = "handles/locks released on every path (with, try/finally, or owner class)"

    def check(self, context: FileContext) -> Iterator[Violation]:
        full = context.in_package("repro") and not context.is_test_code
        for func, owner in _iter_functions(context.tree):
            yield from self._check_function(context, func, owner, full)

    def _check_function(
        self,
        context: FileContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        owner: ast.ClassDef | None,
        full: bool,
    ) -> Iterator[Violation]:
        with_exprs = _with_item_exprs(func)
        returned = _returned_names(func)
        cfg = build_cfg(func)
        backward_cache: dict[str, BackwardMust] = {}

        def closed_on_all_paths(name: str, block: Block, index: int) -> bool:
            analysis = backward_cache.get(name)
            if analysis is None:
                analysis = BackwardMust(
                    cfg,
                    lambda n: _closes_name(n, name),
                    exits=cfg.exits(include_raises=True),
                )
                backward_cache[name] = analysis
            return analysis.after(block, index)

        for block, index, element in cfg.iter_elements():
            for node in walk_element(element):
                call = _is_acquisition(node)
                if call is None or id(call) in with_exprs:
                    continue
                verdict = self._classify(
                    context, call, element, owner, returned,
                    lambda name: closed_on_all_paths(name, block, index),
                    full,
                )
                if verdict is not None:
                    yield verdict

    def _classify(
        self,
        context: FileContext,
        call: ast.Call,
        element: ast.AST,
        owner: ast.ClassDef | None,
        returned: set[str],
        closed_on_all_paths: object,
        full: bool,
    ) -> Violation | None:
        what = (
            call.func.id
            if isinstance(call.func, ast.Name)
            else getattr(call.func, "attr", "open")
        )
        # Ownership transfer: the call is the returned value itself, or
        # one component of a returned tuple (``return open(p), True``).
        # ``return open(p).read()`` still leaks — the handle is not
        # what crosses the boundary.
        if isinstance(element, ast.Return):
            value = element.value
            if _binds_call(value, call):
                return None
            if isinstance(value, ast.Tuple) and call in value.elts:
                return None
        targets: list[ast.expr] = []
        if isinstance(element, ast.Assign) and _binds_call(element.value, call):
            targets = list(element.targets)
        elif isinstance(element, ast.AnnAssign) and _binds_call(
            element.value, call
        ):
            targets = [element.target]
        if targets:
            if len(targets) == 1:
                target = targets[0]
                if isinstance(target, ast.Attribute):
                    # Stored on an object: the owner class must manage
                    # resource lifetimes (close/__exit__/__del__).
                    if not full:
                        return None
                    program = context.program
                    if owner is not None and program is not None:
                        info = program.classes.get(f"{context.module}.{owner.name}")
                        if info is not None and info.manages_resources:
                            return None
                    return self.violation(
                        context,
                        call,
                        f"{what}() result stored on an object with no "
                        "close()/__exit__() — give the owning class a "
                        "lifecycle method or use a with block",
                    )
                if isinstance(target, ast.Name):
                    if not full:
                        return None
                    if target.id in returned:
                        return None  # ownership transferred to the caller
                    if closed_on_all_paths(target.id):  # type: ignore[operator]
                        return None
                    return self.violation(
                        context,
                        call,
                        f"{what}() assigned to {target.id!r} but not "
                        "released on every path — use a with block or "
                        "close it in a finally",
                    )
            return None  # tuple/star targets: not tracked
        # Inline use: the handle is never bound, so it can never be
        # closed deterministically. Flagged in every profile.
        return self.violation(
            context,
            call,
            f"inline {what}() call leaks its handle — bind it in a "
            "with block (or close it explicitly)",
        )
