"""CLQ007 — cache-invalidation soundness (flow-sensitive).

The ``FlattenedPST`` array export and every ``PstBatchScorer`` cache
are keyed on ``ProbabilisticSuffixTree._version`` (see
docs/PERFORMANCE.md): a mutation of tree state that does not bump the
version makes those caches serve stale — but bit-exact-looking —
probability tables. That failure is silent by construction, so it must
be impossible by construction.

The rule finds every class that participates in the contract (any
class with a method that writes ``self._version`` — the *invalidator*
methods, e.g. ``_invalidate``/``_mark_mutated``) and then checks every
other method with a CFG + dataflow analysis: **each write to tracked
tree state must have an invalidation on every execution path through
it** — either definitely before the write (decay-style ``_invalidate()``
up front) or definitely after it on all paths to every exit,
*including paths that leave via ``raise``* (a caller may catch the
exception and keep using the tree, so a mutate-then-raise path is a
stale-cache path too).

Tracked state is the node/count surface the flat export is built from:
``count``, ``next_counts``, ``children``, ``root``, ``_node_count``,
``_sequences_added`` — written directly, through a subscript, through
a mutating dict/list method, or through a one-hop local alias
(``root_next = root.next_counts; root_next[s] = ...``).

Analysis assumptions (shared with :mod:`tools.checkers.cfg`): implicit
exceptions from arbitrary expressions are not modelled, and nested
``def``/``class`` bodies are opaque — a mutation hidden inside a
nested function is invisible to this rule.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..cfg import build_cfg, walk_element
from ..dataflow import BackwardMust, ForwardMust
from ..engine import FileContext, Rule, Violation, register
from ..symbols import ClassInfo

#: Attribute names making up the tracked count/node state surface.
TRACKED_ATTRS = frozenset(
    {"count", "next_counts", "children", "root", "_node_count", "_sequences_added"}
)

#: Container attributes whose mutating method calls count as writes.
_CONTAINER_ATTRS = frozenset({"next_counts", "children", "root"})

#: Method names that mutate their receiver in place.
_MUTATING_METHODS = frozenset(
    {"pop", "popitem", "clear", "update", "setdefault", "append", "extend", "insert", "remove"}
)

#: Methods exempt from the check: construction happens before any
#: cache can exist, and the invalidators are the mechanism itself.
_EXEMPT_METHODS = frozenset({"__init__", "__new__", "__init_subclass__"})


def _collect_aliases(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Local names bound to a tracked container attribute.

    One hop only: ``root_next = root.next_counts`` makes ``root_next``
    an alias; re-aliasing an alias is not chased.
    """
    aliases: set[str] = set()
    for stmt in func.body:
        for node in walk_element(stmt):
            if not isinstance(node, ast.Assign):
                continue
            if not (
                isinstance(node.value, ast.Attribute)
                and node.value.attr in _CONTAINER_ATTRS
            ):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    aliases.add(target.id)
    return aliases


def _target_mutates(target: ast.expr, aliases: set[str]) -> bool:
    """Whether assigning/deleting *target* writes tracked state."""
    if isinstance(target, ast.Attribute) and target.attr in TRACKED_ATTRS:
        return True
    if isinstance(target, ast.Subscript):
        base = target.value
        if isinstance(base, ast.Attribute) and base.attr in _CONTAINER_ATTRS:
            return True
        if isinstance(base, ast.Name) and base.id in aliases:
            return True
    if isinstance(target, (ast.Tuple, ast.List)):
        return any(_target_mutates(element, aliases) for element in target.elts)
    return False


def _mutation_in(element: ast.AST, aliases: set[str]) -> ast.AST | None:
    """The first tracked-state write inside *element*, or ``None``."""
    for node in walk_element(element):
        if isinstance(node, ast.Assign):
            if any(_target_mutates(t, aliases) for t in node.targets):
                return node
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if _target_mutates(node.target, aliases):
                return node
        elif isinstance(node, ast.Delete):
            if any(_target_mutates(t, aliases) for t in node.targets):
                return node
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _MUTATING_METHODS:
                base = func.value
                if isinstance(base, ast.Attribute) and base.attr in _CONTAINER_ATTRS:
                    return node
                if isinstance(base, ast.Name) and base.id in aliases:
                    return node
    return None


def _is_invalidation(node: ast.AST, invalidators: frozenset[str]) -> bool:
    """A call to an invalidator method, or a direct ``_version`` write."""
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in invalidators:
            return True
    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Attribute) and target.attr == "_version":
                return True
    return False


@register
class CacheInvalidationRule(Rule):
    rule_id = "CLQ007"
    summary = "tracked-state writes must reach a version bump on every path"

    def check(self, context: FileContext) -> Iterator[Violation]:
        if context.is_test_code or not context.in_package("repro"):
            return
        if context.program is None:
            return
        for info in context.program.classes_in_module(context.module):
            if not info.version_bumpers:
                continue
            yield from self._check_class(context, info)

    def _check_class(
        self, context: FileContext, info: ClassInfo
    ) -> Iterator[Violation]:
        invalidators = frozenset(info.version_bumpers | {"_mark_mutated"})
        # Suggest the dedicated invalidator, not __init__ (which also
        # writes _version when it initialises the counter).
        named = sorted(b for b in info.version_bumpers if not b.startswith("__"))
        suggested = named[0] if named else sorted(invalidators)[0]

        def gen(node: ast.AST) -> bool:
            return _is_invalidation(node, invalidators)

        for name, method in info.methods.items():
            if name in invalidators or name in _EXEMPT_METHODS:
                continue
            aliases = _collect_aliases(method)
            cfg = build_cfg(method)
            forward = ForwardMust(cfg, gen)
            backward = BackwardMust(cfg, gen, exits=cfg.exits(include_raises=True))
            for block, index, element in cfg.iter_elements():
                mutation = _mutation_in(element, aliases)
                if mutation is None:
                    continue
                if any(gen(node) for node in walk_element(element)):
                    continue  # the element itself invalidates
                if forward.before(block, index) or backward.after(block, index):
                    continue
                yield self.violation(
                    context,
                    mutation,
                    f"{info.name}.{name} writes tracked tree state on a path "
                    f"that never bumps _version — call {suggested}() on "
                    "every path (stale FlattenedPST/batch-scorer caches "
                    "otherwise)",
                )
