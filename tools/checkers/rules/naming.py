"""CLQ006 — observability naming and span-usage discipline.

Two related conventions keep the telemetry surface machine-consumable
(docs/OBSERVABILITY.md):

1. Metric names handed to the registry factories (``counter``,
   ``gauge``, ``histogram``, ``timer``, ``series``) must be dotted
   lowercase paths — ``layer.metric`` or deeper, matching
   ``^[a-z][a-z0-9_]*(\\.[a-z0-9_]+)+$`` — so the Prometheus exporter
   and the telemetry-v2 profile view can group them by namespace. A
   bare ``counter("hits")`` collides across layers and breaks the
   grouping. Span names may be single-segment (the dotted path comes
   from nesting) but obey the same character set.

2. ``span(...)`` must be used as a context manager: the span records
   its timing in ``__exit__``, so a bare ``span("x")`` call silently
   records nothing and exports nothing.

The analysis is syntactic. Literal first arguments are checked in
full; for f-strings only the leading literal chunk is checked (e.g.
``f"profile.kernel.{name}"`` validates ``"profile.kernel."``); fully
dynamic names are trusted. Test code is exempt.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from ..engine import FileContext, Rule, Violation, register

#: Metric names: at least two dotted lowercase segments.
_METRIC_NAME = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")
#: Span names: one or more segments, same character set.
_SPAN_NAME = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$")
#: f-string prefixes: namespace characters only, lowercase start.
_NAME_PREFIX = re.compile(r"^[a-z][a-z0-9_.]*$")

_METRIC_FACTORIES = frozenset(
    {"counter", "gauge", "histogram", "timer", "series"}
)


def _called_name(call: ast.Call) -> str | None:
    """The bare method/function name of *call*, if syntactically plain."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _first_arg_problem(call: ast.Call, pattern: re.Pattern[str]) -> str | None:
    """Why the name argument of *call* violates *pattern*, or None."""
    if not call.args:
        return None
    arg = call.args[0]
    if isinstance(arg, ast.Constant):
        if not isinstance(arg.value, str):
            return None  # not a name at all; other tooling's problem
        if not pattern.match(arg.value):
            return f"name {arg.value!r}"
        return None
    if isinstance(arg, ast.JoinedStr) and arg.values:
        head = arg.values[0]
        if isinstance(head, ast.Constant) and isinstance(head.value, str):
            if not _NAME_PREFIX.match(head.value):
                return f"f-string prefix {head.value!r}"
    return None  # dynamic name — trusted


@register
class ObservabilityNamingRule(Rule):
    rule_id = "CLQ006"
    summary = "dotted metric names; span(...) only as a context manager"

    def check(self, context: FileContext) -> Iterator[Violation]:
        if not context.in_package("repro") or context.is_test_code:
            return
        with_spans: set[int] = set()
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_spans.add(id(item.context_expr))
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _called_name(node)
            if name in _METRIC_FACTORIES:
                problem = _first_arg_problem(node, _METRIC_NAME)
                if problem is not None:
                    yield self.violation(
                        context,
                        node,
                        f"metric {problem} is not a dotted lowercase "
                        "path (want layer.metric, e.g. stream.batches)",
                    )
            elif name == "span":
                problem = _first_arg_problem(node, _SPAN_NAME)
                if problem is not None:
                    yield self.violation(
                        context,
                        node,
                        f"span {problem} is not a lowercase dotted/"
                        "single-segment name",
                    )
                if id(node) not in with_spans:
                    yield self.violation(
                        context,
                        node,
                        "span(...) outside a with-statement records "
                        "nothing — use `with span(...):`",
                    )
