"""Built-in CLQ rules. Importing this package registers them all."""

from . import (
    anchors,
    cache_invalidation,
    defaults,
    determinism,
    durability,
    floats,
    imports,
    metric_registry,
    naming,
    resources,
)

__all__ = [
    "anchors",
    "cache_invalidation",
    "defaults",
    "determinism",
    "durability",
    "floats",
    "imports",
    "metric_registry",
    "naming",
    "resources",
]
