"""Built-in CLQ rules. Importing this package registers them all."""

from . import anchors, defaults, determinism, floats, imports, naming

__all__ = ["anchors", "defaults", "determinism", "floats", "imports", "naming"]
