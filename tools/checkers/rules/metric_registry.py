"""CLQ010 — cross-module telemetry-name consistency.

The telemetry surface (docs/PERFORMANCE.md) is consumed by dashboards
and the bench trajectory ledger, which join on *names*. A typo'd
metric name (``pst.decay_purged_nodes``) silently creates a second
series nobody charts; a renamed span breaks every saved query. v2
makes the name set a declared, reviewable artifact:
``src/repro/obs/names.py`` holds the registry constants (``METRICS``,
``SPANS``, ``KERNELS``, ``CACHES``, ``LATENCIES`` plus ``*_PREFIXES``
for dynamic families), parsed in pass 1 by
:class:`~tools.checkers.symbols.ProgramIndex`.

This rule then resolves every literal name at every emission site —
``metrics.counter(...)``/``gauge``/``histogram``/``timer``/``series``,
``obs.span(...)``, ``prof.kernel(...)``/``record_kernel``,
``prof.cache_hit``/``cache_miss``, ``prof.latency(...)`` — against the
registry. F-strings are checked by their literal head: the head must
extend a declared prefix, or some declared name must still be able to
complete it. Sites whose first argument is not a string literal at all
(plumbing that forwards a caller-supplied name) are out of scope.

The rule is quiet when no registry module is part of the analyzed file
set (e.g. single-file invocations), so it cannot produce noise before
the registry exists.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..engine import FileContext, Rule, Violation, register
from ..symbols import NameRegistry

#: Emitter method name → the registry namespace it draws from.
_METRIC_METHODS = frozenset({"counter", "gauge", "histogram", "timer", "series"})
_SPAN_METHODS = frozenset({"span"})
#: Module-level span emitters, matched as plain-name calls.
_SPAN_FUNCTIONS = frozenset({"record_foreign_span"})
_KERNEL_METHODS = frozenset({"kernel", "record_kernel"})
_CACHE_METHODS = frozenset({"cache_hit", "cache_miss"})
_LATENCY_METHODS = frozenset({"latency"})

_ALL_METHODS = (
    _METRIC_METHODS | _SPAN_METHODS | _KERNEL_METHODS | _CACHE_METHODS | _LATENCY_METHODS
)


def _fstring_head(node: ast.JoinedStr) -> str | None:
    """Leading literal text of an f-string, up to the first ``{...}``."""
    head = ""
    for value in node.values:
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            head += value.value
        else:
            break
    return head or None


def _first_name_arg(call: ast.Call) -> ast.expr | None:
    if call.args:
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg == "name":
            return keyword.value
    return None


@register
class MetricRegistryRule(Rule):
    rule_id = "CLQ010"
    summary = "emitted telemetry names must resolve against repro/obs/names.py"

    def check(self, context: FileContext) -> Iterator[Violation]:
        if context.is_test_code or not context.in_package("repro"):
            return
        program = context.program
        if program is None or program.names is None:
            return
        registry = program.names
        if context.module == registry.module:
            return  # the registry itself declares, it does not emit
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _ALL_METHODS:
                method = func.attr
            elif isinstance(func, ast.Name) and func.id in _SPAN_FUNCTIONS:
                method = "span"
            else:
                continue
            arg = _first_name_arg(node)
            if arg is None:
                continue
            yield from self._check_site(context, registry, method, node, arg)

    def _check_site(
        self,
        context: FileContext,
        registry: NameRegistry,
        method: str,
        call: ast.Call,
        arg: ast.expr,
    ) -> Iterator[Violation]:
        if method in _METRIC_METHODS:
            kind, names, exact, prefix_ok = (
                "metric",
                registry.metrics,
                registry.resolves_metric,
                registry.resolves_metric_prefix,
            )
        elif method in _SPAN_METHODS:
            kind, names, exact, prefix_ok = (
                "span",
                registry.spans,
                registry.resolves_span,
                registry.resolves_span_prefix,
            )
        elif method in _KERNEL_METHODS:
            kind, names = "kernel", registry.kernels
            exact = names.__contains__
            prefix_ok = lambda head: any(n.startswith(head) for n in names)  # noqa: E731
        elif method in _CACHE_METHODS:
            kind, names = "cache", registry.caches
            exact = names.__contains__
            prefix_ok = lambda head: any(n.startswith(head) for n in names)  # noqa: E731
        else:
            kind, names = "latency", registry.latencies
            exact = names.__contains__
            prefix_ok = lambda head: any(n.startswith(head) for n in names)  # noqa: E731

        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            if not exact(arg.value):
                yield self.violation(
                    context,
                    arg,
                    f"{kind} name {arg.value!r} is not declared in "
                    "repro/obs/names.py — typo'd names fork the series "
                    "silently; declare it or fix the spelling",
                )
        elif isinstance(arg, ast.JoinedStr):
            head = _fstring_head(arg)
            if head is not None and not prefix_ok(head):
                yield self.violation(
                    context,
                    arg,
                    f"dynamic {kind} name starting {head!r} matches no "
                    "declared name or prefix in repro/obs/names.py — "
                    "declare a prefix for the family",
                )
