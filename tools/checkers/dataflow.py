"""Boolean must-analyses over :mod:`tools.checkers.cfg` graphs.

Two dual analyses cover every flow-sensitive rule currently shipped:

* :class:`ForwardMust` — "has a *gen* element definitely executed on
  every path from the function entry to this point?" Used by CLQ007
  (was the version already bumped before this mutation?) and CLQ008
  (did an ``os.fsync`` definitely precede this ``os.replace``?).
* :class:`BackwardMust` — "does every path from this point to a
  function exit execute a *gen* element?" Used by CLQ007 (will the
  version be bumped after this mutation, whichever branch runs?) and
  CLQ009 (is the handle closed on all paths?).

Both are classic meet-over-all-paths boolean dataflow with ``AND`` as
the meet operator: the lattice is two-valued, transfer functions are
monotone, so the worklist iteration terminates. Unreachable blocks stay
at the optimistic initial value, which is vacuously correct (there is
no path through them to witness a violation).

The decomposition ``covered(p) = ForwardMust(p) or BackwardMust(p)`` is
exact for "does some full path through *p* avoid a gen element": if
both analyses fail at *p* there is a gen-free path from entry to *p*
and a gen-free path from *p* to an exit, and their concatenation is a
gen-free path through *p*.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterable

from .cfg import CFG, Block, element_matches

__all__ = ["ForwardMust", "BackwardMust"]

Predicate = Callable[[ast.AST], bool]


class _MustAnalysis:
    """Shared fixpoint machinery; direction supplied by subclasses."""

    def __init__(self, cfg: CFG, gen: Predicate) -> None:
        self.cfg = cfg
        self._gen_cache: dict[int, list[bool]] = {}
        for block in cfg.blocks:
            self._gen_cache[block.index] = [
                element_matches(element, gen) for element in block.elements
            ]

    def block_has_gen(self, block: Block) -> bool:
        return any(self._gen_cache[block.index])

    def gen_flags(self, block: Block) -> list[bool]:
        return self._gen_cache[block.index]


class ForwardMust(_MustAnalysis):
    """At each point: a gen element executed on *all* entry paths."""

    def __init__(self, cfg: CFG, gen: Predicate) -> None:
        super().__init__(cfg, gen)
        # IN[b]: gen definitely executed before b's first element.
        self._in = {block.index: True for block in cfg.blocks}
        self._in[cfg.entry.index] = False
        self._solve()

    def _out(self, block: Block) -> bool:
        return self._in[block.index] or self.block_has_gen(block)

    def _solve(self) -> None:
        work = list(self.cfg.blocks)
        while work:
            block = work.pop()
            if block is self.cfg.entry:
                continue
            if not block.preds:
                continue  # unreachable: stays optimistic
            new_in = all(self._out(pred) for pred in block.preds)
            if new_in != self._in[block.index]:
                self._in[block.index] = new_in
                work.extend(block.succs)

    def before(self, block: Block, index: int) -> bool:
        """Gen definitely executed before element *index* of *block*."""
        flags = self.gen_flags(block)
        return self._in[block.index] or any(flags[:index])


class BackwardMust(_MustAnalysis):
    """At each point: every path onward to an exit runs a gen element."""

    def __init__(
        self, cfg: CFG, gen: Predicate, exits: Iterable[Block] | None = None
    ) -> None:
        super().__init__(cfg, gen)
        counted = set(b.index for b in (exits if exits is not None else cfg.exits()))
        # OUT[b]: every path from b's end to a counted exit passes a gen.
        # Virtual exits carry no elements; a counted exit ends the path
        # gen-free (False), an uncounted one is vacuously fine (True).
        self._out = {block.index: True for block in cfg.blocks}
        for index in counted:
            self._out[index] = False
        self._counted = counted
        self._solve()

    def _in(self, block: Block) -> bool:
        if block.index in self._counted:
            return False
        return self.block_has_gen(block) or self._out[block.index]

    def _solve(self) -> None:
        work = list(self.cfg.blocks)
        while work:
            block = work.pop()
            if block.index in self._counted or not block.succs:
                continue
            new_out = all(self._in(succ) for succ in block.succs)
            if new_out != self._out[block.index]:
                self._out[block.index] = new_out
                work.extend(block.preds)

    def after(self, block: Block, index: int) -> bool:
        """Every path after element *index* of *block* runs a gen."""
        flags = self.gen_flags(block)
        return any(flags[index + 1 :]) or self._out[block.index]

    def at(self, block: Block, index: int) -> bool:
        """Like :meth:`after` but counting element *index* itself."""
        flags = self.gen_flags(block)
        return any(flags[index:]) or self._out[block.index]
