"""CLUSEQ invariant checkers — a repo-specific static analyzer.

Generic linters cannot see the invariants this codebase lives by: the
core → obs/sequences layering that keeps the hot path light, the
"every RNG flows from an explicit seed" determinism contract that makes
paper tables reproducible, or the log-domain float arithmetic that must
never be compared with ``==``. This package walks Python ASTs and
enforces those contracts as CLQ-prefixed rules:

========  ==============================================================
CLQ001    import layering (core must not import experiments/cli/
          evaluation; obs must import only the stdlib)
CLQ002    determinism (no module-level or unseeded ``random`` /
          ``np.random`` use outside test/bench code)
CLQ003    float equality (no ``==`` / ``!=`` on float-typed expressions
          in ``core`` — use ``math.isclose``)
CLQ004    mutable default arguments
CLQ005    paper anchors (public ``core`` functions must carry a
          docstring referencing a paper section/equation/table)
========  ==============================================================

Run it with ``python -m tools.checkers src/repro``. Suppress a finding
on one line with ``# cluseq: ignore[CLQ00X]`` (or a bare
``# cluseq: ignore`` to silence every rule on that line).
"""

from .engine import (
    Checker,
    FileContext,
    Rule,
    Violation,
    all_rules,
    get_rule,
    iter_python_files,
    register,
)

__all__ = [
    "Checker",
    "FileContext",
    "Rule",
    "Violation",
    "all_rules",
    "get_rule",
    "iter_python_files",
    "register",
]
