"""CLUSEQ invariant checkers — a repo-specific static analyzer.

Generic linters cannot see the invariants this codebase lives by: the
core → obs/sequences layering that keeps the hot path light, the
"every RNG flows from an explicit seed" determinism contract that makes
paper tables reproducible, or the log-domain float arithmetic that must
never be compared with ``==``. v2 grew the per-file AST walker into a
two-pass, whole-program analyzer: pass 1 builds a repo-wide symbol
table (:mod:`tools.checkers.symbols`), pass 2 runs the rules, the
flow-sensitive ones over per-function control-flow graphs
(:mod:`tools.checkers.cfg`) with boolean must-dataflow
(:mod:`tools.checkers.dataflow`).

========  ==============================================================
CLQ001    import layering (core must not import experiments/cli/
          evaluation; obs must import only the stdlib)
CLQ002    determinism (no module-level or unseeded ``random`` /
          ``np.random`` use outside test/bench code)
CLQ003    float equality (no ``==`` / ``!=`` on float-typed expressions
          in ``core`` — use ``math.isclose``)
CLQ004    mutable default arguments
CLQ005    paper anchors (public ``core`` functions must carry a
          docstring referencing a paper section/equation/table)
CLQ006    dotted metric names; ``span(...)`` only as a context manager
CLQ007    cache-invalidation soundness (tracked-state writes reach a
          ``_version`` bump on every CFG path)
CLQ008    durability protocol (stream writes via fsync-disciplined
          helpers; ``os.fsync`` before ``os.replace`` on every path)
CLQ009    resource discipline (handles/locks released on every path)
CLQ010    telemetry names resolve against ``repro/obs/names.py``
========  ==============================================================

Run it with ``python -m tools.checkers src/repro``. Suppress a finding
on one line with ``# cluseq: ignore[CLQ00X]`` (or a bare
``# cluseq: ignore`` to silence every rule on that line); accept
pre-existing findings wholesale with ``--baseline`` /
``--update-baseline`` (:mod:`tools.checkers.baseline`); export for
GitHub code scanning with ``--sarif`` (:mod:`tools.checkers.sarif`).
"""

from .engine import (
    Checker,
    FileContext,
    Rule,
    Violation,
    all_rules,
    get_rule,
    iter_python_files,
    register,
)

__all__ = [
    "Checker",
    "FileContext",
    "Rule",
    "Violation",
    "all_rules",
    "get_rule",
    "iter_python_files",
    "register",
]
