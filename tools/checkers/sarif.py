"""SARIF 2.1.0 export so CLQ findings land in GitHub code scanning.

One run object, one tool driver (``cluseq-checkers``), one rule
descriptor per registered CLQ rule, one result per violation. Paths
are emitted repo-relative with forward slashes (SARIF
``artifactLocation.uri`` is a URI reference); columns are 1-based in
both our :class:`~tools.checkers.engine.Violation` and SARIF, so they
pass through unchanged.

Only the properties code scanning actually consumes are emitted —
``ruleId``, ``level``, ``message.text`` and the physical location —
plus the rule metadata that renders in the UI (short description and
help URI pointing at docs/STATIC_ANALYSIS.md). Keeping the document
minimal keeps it schema-valid by inspection; the test suite
additionally validates against the published 2.1.0 schema when
``jsonschema`` is importable.
"""

from __future__ import annotations

import json
from pathlib import Path
from collections.abc import Sequence

from .engine import Rule, Violation

__all__ = ["to_sarif", "write_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_TOOL_NAME = "cluseq-checkers"
_HELP_URI = "https://github.com/cluseq/cluseq/blob/main/docs/STATIC_ANALYSIS.md"


def _relative_uri(path: str, root: Path | None) -> str:
    candidate = Path(path)
    if root is not None:
        try:
            candidate = candidate.resolve().relative_to(root.resolve())
        except ValueError:
            pass  # outside the root: keep as given
    return candidate.as_posix()


def _rule_descriptor(rule: Rule) -> dict[str, object]:
    return {
        "id": rule.rule_id,
        "name": type(rule).__name__,
        "shortDescription": {"text": rule.summary},
        "helpUri": _HELP_URI,
        "defaultConfiguration": {"level": "error"},
    }


def _result(violation: Violation, root: Path | None) -> dict[str, object]:
    return {
        "ruleId": violation.rule_id,
        "level": "error",
        "message": {"text": violation.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": _relative_uri(violation.path, root),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": violation.line,
                        "startColumn": violation.col,
                    },
                }
            }
        ],
    }


def to_sarif(
    violations: Sequence[Violation],
    rules: Sequence[Rule],
    root: Path | None = None,
) -> dict[str, object]:
    """The SARIF log as a plain dict (``json.dump``-ready)."""
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": _HELP_URI,
                        "rules": [_rule_descriptor(rule) for rule in rules],
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": [_result(v, root) for v in violations],
            }
        ],
    }


def write_sarif(
    path: Path,
    violations: Sequence[Violation],
    rules: Sequence[Rule],
    root: Path | None = None,
) -> None:
    document = to_sarif(violations, rules, root=root)
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
